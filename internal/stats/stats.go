// Package stats implements the statistics layer of Section 4.1: value
// distributions, presence counts, and set-valued cardinality histograms
// collected once at the finest granularity (the fully split schema /
// the documents themselves, which carry identical information), plus
// the derived per-table statistics any enumerated mapping needs for
// what-if costing. It also computes exact statistics from loaded
// relational data, used when planning real execution.
package stats

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/rel"
	"repro/internal/sqlast"
)

// histBuckets is the number of equi-depth histogram buckets.
const histBuckets = 32

// sampleCap is the reservoir size per column during collection.
const sampleCap = 2048

// Histogram is an equi-depth histogram over a sorted sample.
type Histogram struct {
	// Bounds are ascending bucket upper bounds; each bucket holds an
	// equal fraction of the sampled values.
	Bounds []rel.Value
}

// NewHistogram builds an equi-depth histogram from a value sample.
func NewHistogram(sample []rel.Value) *Histogram {
	if len(sample) == 0 {
		return &Histogram{}
	}
	vals := append([]rel.Value(nil), sample...)
	sort.Slice(vals, func(i, j int) bool { return vals[i].Compare(vals[j]) < 0 })
	nb := histBuckets
	if len(vals) < nb {
		nb = len(vals)
	}
	h := &Histogram{Bounds: make([]rel.Value, nb)}
	for i := 0; i < nb; i++ {
		h.Bounds[i] = vals[(i+1)*len(vals)/nb-1]
	}
	return h
}

// FracLE estimates the fraction of values <= v.
func (h *Histogram) FracLE(v rel.Value) float64 {
	if len(h.Bounds) == 0 {
		return 0.5
	}
	i := sort.Search(len(h.Bounds), func(i int) bool { return h.Bounds[i].Compare(v) >= 0 })
	return float64(i+1) / float64(len(h.Bounds)+1)
}

// mcvCount is the number of most-common values tracked per column.
const mcvCount = 8

// MCV is one most-common-value entry.
type MCV struct {
	// Value is the frequent value.
	Value rel.Value
	// Frac is its fraction among non-NULL values.
	Frac float64
}

// ColumnStats describes the value distribution of one column or leaf
// element.
type ColumnStats struct {
	// Count is the number of non-NULL values.
	Count int64
	// Distinct is the (possibly estimated) distinct value count.
	Distinct int64
	// Min and Max bound the non-NULL values.
	Min, Max rel.Value
	// AvgWidth is the average byte width of non-NULL values.
	AvgWidth float64
	// NullFrac is the fraction of NULLs among the rows of the hosting
	// table (0 when used as raw leaf stats).
	NullFrac float64
	// Hist approximates the value distribution.
	Hist *Histogram
	// MCVs lists the most common values and their frequencies, so
	// equality selectivity on skewed columns (the Zipf conference
	// distribution) is estimated from frequency rather than
	// 1/distinct.
	MCVs []MCV
	// Typ is the value type.
	Typ rel.Type
}

// Selectivity estimates the fraction of non-NULL values satisfying
// "value op v".
func (c *ColumnStats) Selectivity(op sqlast.CmpOp, v rel.Value) float64 {
	if c.Count == 0 {
		return 0
	}
	eq := c.eqSelectivity(v)
	var s float64
	switch op {
	case sqlast.OpEq:
		s = eq
	case sqlast.OpNe:
		s = 1 - eq
	case sqlast.OpLe:
		s = c.fracLE(v)
	case sqlast.OpLt:
		s = c.fracLE(v) - eq
	case sqlast.OpGt:
		s = 1 - c.fracLE(v)
	case sqlast.OpGe:
		s = 1 - c.fracLE(v) + eq
	}
	return clamp01(s)
}

// eqSelectivity estimates P(value = v): the tracked frequency for a
// most-common value, otherwise the residual mass spread over the
// remaining distinct values.
func (c *ColumnStats) eqSelectivity(v rel.Value) float64 {
	var mcvMass float64
	for _, m := range c.MCVs {
		if m.Value.Equal(v) {
			return m.Frac
		}
		mcvMass += m.Frac
	}
	rest := float64(c.Distinct) - float64(len(c.MCVs))
	if rest < 1 {
		rest = 1
	}
	s := (1 - mcvMass) / rest
	if s < 0 {
		s = 0
	}
	return s
}

func (c *ColumnStats) fracLE(v rel.Value) float64 {
	if c.Count > 0 && !c.Min.Null {
		if v.Compare(c.Min) < 0 {
			return 0
		}
		if v.Compare(c.Max) >= 0 {
			return 1
		}
	}
	if c.Hist != nil {
		return c.Hist.FracLE(v)
	}
	return 0.33
}

// Scale returns a copy with Count scaled by f (for partitions); the
// distinct count is capped at the new cardinality.
func (c *ColumnStats) Scale(f float64) *ColumnStats {
	out := *c
	out.Count = int64(float64(c.Count) * f)
	if out.Distinct > out.Count {
		out.Distinct = out.Count
	}
	return &out
}

func clamp01(f float64) float64 {
	if !(f >= 0) { // catches NaN along with negatives
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// ColumnCollector accumulates ColumnStats from a value stream using a
// deterministic reservoir sample and exact value counts (capped).
type ColumnCollector struct {
	typ      rel.Type
	count    int64
	finite   int64 // values eligible for min/max and the sample
	widthSum int64
	min, max rel.Value
	counts   map[string]int64
	rep      map[string]rel.Value
	overflow bool
	sample   []rel.Value
	rng      uint64
}

// NewColumnCollector creates a collector for values of type t.
func NewColumnCollector(t rel.Type) *ColumnCollector {
	return &ColumnCollector{
		typ:    t,
		counts: make(map[string]int64),
		rep:    make(map[string]rel.Value),
		rng:    0x9e3779b97f4a7c15,
	}
}

// Add accumulates one non-NULL value. Non-finite floats (NaN, ±Inf)
// are counted and tracked for distinct/MCV purposes but excluded from
// min/max and the histogram sample: range selectivity over [NaN, +Inf]
// bounds would swallow every predicate, and the estimator's arithmetic
// must stay finite.
func (cc *ColumnCollector) Add(v rel.Value) {
	if v.Null {
		return
	}
	cc.count++
	cc.widthSum += int64(v.Width())
	key := v.String()
	if n, ok := cc.counts[key]; ok {
		cc.counts[key] = n + 1
	} else if len(cc.counts) < 100000 {
		cc.counts[key] = 1
		cc.rep[key] = v
	} else {
		cc.overflow = true
	}
	if v.Typ == rel.TFloat && (math.IsNaN(v.F) || math.IsInf(v.F, 0)) {
		return
	}
	if cc.finite == 0 || v.Compare(cc.min) < 0 {
		cc.min = v
	}
	if cc.finite == 0 || v.Compare(cc.max) > 0 {
		cc.max = v
	}
	cc.finite++
	if len(cc.sample) < sampleCap {
		cc.sample = append(cc.sample, v)
		return
	}
	// Deterministic xorshift reservoir.
	cc.rng ^= cc.rng << 13
	cc.rng ^= cc.rng >> 7
	cc.rng ^= cc.rng << 17
	if idx := cc.rng % uint64(cc.finite); idx < uint64(sampleCap) {
		cc.sample[idx] = v
	}
}

// Stats finalizes the collected statistics.
func (cc *ColumnCollector) Stats() *ColumnStats {
	cs := &ColumnStats{
		Count:    cc.count,
		Distinct: int64(len(cc.counts)),
		Min:      cc.min,
		Max:      cc.max,
		Typ:      cc.typ,
	}
	if cc.count > 0 {
		cs.AvgWidth = float64(cc.widthSum) / float64(cc.count)
	}
	if cc.finite == 0 {
		cs.Min, cs.Max = rel.NullOf(cc.typ), rel.NullOf(cc.typ)
	}
	cs.Hist = NewHistogram(cc.sample)
	// Most-common values: only meaningful when the counts are exact
	// and the value is genuinely frequent (above twice the uniform
	// share).
	if !cc.overflow && cc.count > 0 && len(cc.counts) > 0 {
		type kv struct {
			key string
			n   int64
		}
		top := make([]kv, 0, len(cc.counts))
		for k, n := range cc.counts {
			top = append(top, kv{k, n})
		}
		sort.Slice(top, func(i, j int) bool {
			if top[i].n != top[j].n {
				return top[i].n > top[j].n
			}
			return top[i].key < top[j].key
		})
		uniform := float64(cc.count) / float64(len(cc.counts))
		for i := 0; i < len(top) && i < mcvCount; i++ {
			if float64(top[i].n) < 2*uniform {
				break
			}
			cs.MCVs = append(cs.MCVs, MCV{
				Value: cc.rep[top[i].key],
				Frac:  float64(top[i].n) / float64(cc.count),
			})
		}
	}
	return cs
}

// CardHist is a cardinality histogram for a set-valued element: how
// many parent instances have exactly c occurrences.
type CardHist struct {
	// CountByCard maps occurrence count -> number of parents.
	CountByCard map[int]int64
	// Parents is the total number of parent instances observed.
	Parents int64
	// Total is the total number of occurrences.
	Total int64
}

// NewCardHist creates an empty cardinality histogram.
func NewCardHist() *CardHist {
	return &CardHist{CountByCard: make(map[int]int64)}
}

// Add records one parent instance with c occurrences.
func (h *CardHist) Add(c int) {
	h.CountByCard[c]++
	h.Parents++
	h.Total += int64(c)
}

// Max returns the maximum observed cardinality.
func (h *CardHist) Max() int {
	max := 0
	for c := range h.CountByCard {
		if c > max {
			max = c
		}
	}
	return max
}

// FracAtMost returns the fraction of parents with cardinality <= k.
func (h *CardHist) FracAtMost(k int) float64 {
	if h.Parents == 0 {
		return 1
	}
	var n int64
	for c, cnt := range h.CountByCard {
		if c <= k {
			n += cnt
		}
	}
	return float64(n) / float64(h.Parents)
}

// FracWithAtLeast returns the fraction of parents with cardinality >= i
// (the non-NULL fraction of split column v_i).
func (h *CardHist) FracWithAtLeast(i int) float64 {
	if h.Parents == 0 {
		return 0
	}
	var n int64
	for c, cnt := range h.CountByCard {
		if c >= i {
			n += cnt
		}
	}
	return float64(n) / float64(h.Parents)
}

// OverflowCount returns the number of occurrences beyond the first k
// per parent: the row count of the overflow relation under repetition
// split with count k.
func (h *CardHist) OverflowCount(k int) int64 {
	var n int64
	for c, cnt := range h.CountByCard {
		if c > k {
			n += int64(c-k) * cnt
		}
	}
	return n
}

// SplitCount chooses the repetition-split count per Section 4.6: the
// smallest k <= cmax such that at least frac of parents have
// cardinality <= k, or 0 if no such k exists (distribution not skewed
// to the low-cardinality region).
func (h *CardHist) SplitCount(cmax int, frac float64) int {
	for k := 1; k <= cmax; k++ {
		if h.FracAtMost(k) >= frac {
			return k
		}
	}
	return 0
}

// Collection is the statistics gathered once per dataset at the finest
// granularity, keyed by schema node ID (stable across all mappings).
type Collection struct {
	// Count is the number of instances per element node.
	Count map[int]int64
	// Card is the per-parent cardinality histogram per set-valued
	// element node.
	Card map[int]*CardHist
	// Cols is the value distribution per leaf element node.
	Cols map[int]*ColumnStats
	// DocBytes approximates the serialized document size.
	DocBytes int64
}

// NewCollection creates an empty statistics collection.
func NewCollection() *Collection {
	return &Collection{
		Count: make(map[int]int64),
		Card:  make(map[int]*CardHist),
		Cols:  make(map[int]*ColumnStats),
	}
}

// InstanceCount returns the instance count for a node ID.
func (c *Collection) InstanceCount(id int) int64 { return c.Count[id] }

// Presence returns the fraction of parent instances that contain the
// given child element node at least once.
func (c *Collection) Presence(childID, parentID int) float64 {
	p := c.Count[parentID]
	if p == 0 {
		return 0
	}
	if h, ok := c.Card[childID]; ok {
		return h.FracWithAtLeast(1) * float64(h.Parents) / float64(p)
	}
	f := float64(c.Count[childID]) / float64(p)
	if f > 1 {
		f = 1
	}
	return f
}

// TableStats is what the optimizer consumes: per-relation cardinality,
// width, and per-column distributions.
type TableStats struct {
	Name     string
	Rows     int64
	RowBytes float64
	Cols     map[string]*ColumnStats
}

// Pages returns the table's size in pages under the accounting model.
func (t *TableStats) Pages() int64 {
	b := int64(t.RowBytes*float64(t.Rows)) + 8*t.Rows
	p := (b + rel.PageSize - 1) / rel.PageSize
	if p < 1 {
		p = 1
	}
	return p
}

// Bytes returns the accounted byte size.
func (t *TableStats) Bytes() int64 { return int64(t.RowBytes*float64(t.Rows)) + 8*t.Rows }

// Col returns stats for the named column, or nil.
func (t *TableStats) Col(name string) *ColumnStats { return t.Cols[name] }

// Provider supplies per-table statistics to the optimizer.
type Provider interface {
	// TableStats returns statistics for the named table, or nil if the
	// table is unknown.
	TableStats(name string) *TableStats
}

// MapProvider is a Provider over a map.
type MapProvider map[string]*TableStats

// TableStats implements Provider.
func (m MapProvider) TableStats(name string) *TableStats { return m[name] }

// FromDatabase computes exact TableStats from loaded relational data;
// used when planning execution over real tables.
func FromDatabase(db *rel.Database) MapProvider {
	out := make(MapProvider)
	for _, t := range db.Tables() {
		ts := &TableStats{Name: t.Name, Rows: int64(t.RowCount()), Cols: make(map[string]*ColumnStats)}
		if t.RowCount() > 0 {
			ts.RowBytes = float64(t.Bytes())/float64(t.RowCount()) - 8
		}
		for ci, col := range t.Columns {
			cc := NewColumnCollector(col.Typ)
			nulls := int64(0)
			for r := 0; r < t.RowCount(); r++ {
				v := t.ValueAt(r, ci)
				if v.Null {
					nulls++
					continue
				}
				cc.Add(v)
			}
			cs := cc.Stats()
			if t.RowCount() > 0 {
				cs.NullFrac = float64(nulls) / float64(t.RowCount())
			}
			ts.Cols[col.Name] = cs
		}
		out[t.Name] = ts
	}
	return out
}

// String summarizes a collection for diagnostics.
func (c *Collection) String() string {
	return fmt.Sprintf("stats.Collection{nodes=%d, leaves=%d, setValued=%d, docBytes=%d}",
		len(c.Count), len(c.Cols), len(c.Card), c.DocBytes)
}
