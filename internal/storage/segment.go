// Package storage is the durable layer under internal/rel: it
// serializes each table's columnar state (typed vectors, null bitmaps,
// string dictionaries, bit-faithfulness exceptions) into versioned,
// checksummed binary segment files, records the schema and the chosen
// physical design in a manifest, and reopens the whole store with lazy
// per-table segment loading plus a redo log so generation counters
// replay deterministically across restarts.
//
// Durability model: Save writes every segment, then the redo log, then
// the manifest last (via rename). A crash mid-save leaves no readable
// manifest, so Open fails cleanly rather than serving a partial store.
// Every file carries a CRC32-C checksum; Open and segment loads verify
// checksums, sizes, and structural invariants before any data is
// served — corruption is an error at open/load time, never a wrong
// query answer.
package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/rel"
)

// SegmentVersion is the current binary segment format version. Readers
// accept exactly this version; older binaries reject newer segments
// with a descriptive error instead of misparsing them.
const SegmentVersion = 1

// segMagic brands segment files. The envelope shared by all storage
// files is: magic (4 bytes) | u32 version | u64 payload length |
// u32 CRC32-C of payload | payload.
var segMagic = [4]byte{'X', 'S', 'E', 'G'}

// envelopeSize is the fixed byte cost of the file envelope.
const envelopeSize = 4 + 4 + 8 + 4

// crcTable is the Castagnoli polynomial table shared by every
// checksum in the store.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// wrapEnvelope frames a payload with magic, version, length, and
// checksum.
func wrapEnvelope(magic [4]byte, version uint32, payload []byte) []byte {
	out := make([]byte, 0, envelopeSize+len(payload))
	out = append(out, magic[:]...)
	out = binary.LittleEndian.AppendUint32(out, version)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(payload)))
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(payload, crcTable))
	return append(out, payload...)
}

// openEnvelope verifies the frame and returns the payload. kind names
// the file type in errors ("segment", "manifest").
func openEnvelope(kind string, magic [4]byte, version uint32, data []byte) ([]byte, error) {
	if len(data) < envelopeSize {
		return nil, fmt.Errorf("storage: %s file truncated: %d bytes, need at least %d", kind, len(data), envelopeSize)
	}
	if [4]byte(data[:4]) != magic {
		return nil, fmt.Errorf("storage: not a %s file (magic %q)", kind, data[:4])
	}
	v := binary.LittleEndian.Uint32(data[4:8])
	if v != version {
		return nil, fmt.Errorf("storage: unsupported %s format version %d (this build reads version %d)", kind, v, version)
	}
	n := binary.LittleEndian.Uint64(data[8:16])
	payload := data[envelopeSize:]
	if n != uint64(len(payload)) {
		return nil, fmt.Errorf("storage: %s payload length %d disagrees with file size (%d bytes after header)", kind, n, len(payload))
	}
	want := binary.LittleEndian.Uint32(data[16:20])
	if got := crc32.Checksum(payload, crcTable); got != want {
		return nil, fmt.Errorf("storage: %s checksum mismatch: file says %08x, payload hashes to %08x", kind, want, got)
	}
	return payload, nil
}

// EncodeSegment serializes a table snapshot into a self-contained,
// checksummed segment. The encoding is deterministic: the same
// snapshot always yields the same bytes (exceptions are sorted,
// dictionaries are in first-appearance order), which the golden-format
// tests pin.
func EncodeSegment(s *rel.TableSnapshot) []byte {
	var p []byte
	p = appendString(p, s.Name)
	p = appendString(p, s.Parent)
	p = binary.AppendUvarint(p, uint64(s.Generation))
	p = binary.AppendUvarint(p, uint64(s.RowCount))
	p = binary.AppendUvarint(p, uint64(len(s.Columns)))
	for i := range s.Columns {
		cs := &s.Columns[i]
		p = appendString(p, cs.Col.Name)
		p = append(p, byte(cs.Col.Typ), boolByte(cs.Col.Nullable))
		p = binary.AppendVarint(p, int64(cs.Col.LeafID))
		p = binary.AppendUvarint(p, uint64(cs.Col.Occurrence))
		p = binary.AppendUvarint(p, uint64(len(cs.NullWords)))
		for _, w := range cs.NullWords {
			p = binary.LittleEndian.AppendUint64(p, w)
		}
		switch cs.Col.Typ {
		case rel.TInt:
			for _, v := range cs.Ints {
				p = binary.LittleEndian.AppendUint64(p, uint64(v))
			}
		case rel.TFloat:
			for _, v := range cs.Floats {
				p = binary.LittleEndian.AppendUint64(p, math.Float64bits(v))
			}
		case rel.TString:
			p = binary.AppendUvarint(p, uint64(len(cs.Dict)))
			for _, ds := range cs.Dict {
				p = appendString(p, ds)
			}
			for _, c := range cs.Codes {
				p = binary.AppendUvarint(p, uint64(c))
			}
		}
		p = binary.AppendUvarint(p, uint64(len(cs.Exc)))
		for _, e := range cs.Exc {
			p = binary.AppendUvarint(p, uint64(e.Row))
			p = appendValue(p, e.Val)
		}
	}
	return wrapEnvelope(segMagic, SegmentVersion, p)
}

// DecodeSegment parses a segment file back into a snapshot. It
// tolerates arbitrary input: every read is bounds-checked, allocation
// sizes are capped by the remaining payload, and all failures are
// errors (the native fuzz target FuzzSegmentDecode hammers this).
// Structural validation beyond the wire shape — bitmap/vector length
// agreement, dictionary canonicality, exception faithfulness — happens
// in rel.TableFromSnapshot; callers must run the snapshot through it
// before using the data.
func DecodeSegment(data []byte) (*rel.TableSnapshot, error) {
	payload, err := openEnvelope("segment", segMagic, SegmentVersion, data)
	if err != nil {
		return nil, err
	}
	r := &reader{buf: payload, kind: "segment"}
	s := &rel.TableSnapshot{}
	s.Name = r.str("table name")
	s.Parent = r.str("parent name")
	s.Generation = int64(r.uvarint("generation"))
	rows := r.uvarint("row count")
	// Each row costs at least one payload byte in the narrowest
	// encoding (a one-byte varint code), so a row count exceeding the
	// payload size is garbage; reject before sizing any allocation.
	if rows > uint64(len(payload)) {
		return nil, r.failf("row count %d exceeds payload size %d", rows, len(payload))
	}
	s.RowCount = int(rows)
	ncols := r.uvarint("column count")
	if ncols > uint64(r.remaining()) {
		return nil, r.failf("column count %d exceeds remaining payload %d", ncols, r.remaining())
	}
	if r.err != nil {
		return nil, r.err
	}
	s.Columns = make([]rel.ColumnSnapshot, 0, ncols)
	for i := uint64(0); i < ncols && r.err == nil; i++ {
		var cs rel.ColumnSnapshot
		cs.Col.Name = r.str("column name")
		typ := r.byte("column type")
		nullable := r.byte("nullable flag")
		if r.err != nil {
			return nil, r.err
		}
		cs.Col.Typ = rel.Type(typ)
		if nullable > 1 {
			return nil, r.failf("nullable flag %d is not a boolean", nullable)
		}
		cs.Col.Nullable = nullable == 1
		cs.Col.LeafID = int(r.varint("leaf id"))
		cs.Col.Occurrence = int(r.uvarint("occurrence"))
		nwords := r.uvarint("bitmap word count")
		if nwords > uint64(r.remaining())/8 {
			return nil, r.failf("bitmap of %d words exceeds remaining payload %d", nwords, r.remaining())
		}
		if r.err == nil && nwords > 0 {
			cs.NullWords = make([]uint64, nwords)
			for w := range cs.NullWords {
				cs.NullWords[w] = r.u64("bitmap word")
			}
		}
		switch cs.Col.Typ {
		case rel.TInt:
			if rows*8 > uint64(r.remaining()) {
				return nil, r.failf("int vector of %d rows exceeds remaining payload %d", rows, r.remaining())
			}
			cs.Ints = make([]int64, rows)
			for ri := range cs.Ints {
				cs.Ints[ri] = int64(r.u64("int value"))
			}
		case rel.TFloat:
			if rows*8 > uint64(r.remaining()) {
				return nil, r.failf("float vector of %d rows exceeds remaining payload %d", rows, r.remaining())
			}
			cs.Floats = make([]float64, rows)
			for ri := range cs.Floats {
				cs.Floats[ri] = math.Float64frombits(r.u64("float value"))
			}
		case rel.TString:
			dn := r.uvarint("dictionary size")
			if dn > uint64(r.remaining()) {
				return nil, r.failf("dictionary of %d entries exceeds remaining payload %d", dn, r.remaining())
			}
			if r.err == nil && dn > 0 {
				cs.Dict = make([]string, dn)
				for di := range cs.Dict {
					cs.Dict[di] = r.str("dictionary entry")
				}
			}
			cs.Codes = make([]uint32, rows)
			for ri := range cs.Codes {
				c := r.uvarint("string code")
				if c > math.MaxUint32 {
					return nil, r.failf("string code %d overflows uint32", c)
				}
				cs.Codes[ri] = uint32(c)
			}
		default:
			return nil, r.failf("unknown column type %d", typ)
		}
		nexc := r.uvarint("exception count")
		if nexc > rows {
			return nil, r.failf("exception count %d exceeds row count %d", nexc, rows)
		}
		if r.err == nil && nexc > 0 {
			cs.Exc = make([]rel.ExcEntry, nexc)
			for ei := range cs.Exc {
				cs.Exc[ei].Row = int(r.uvarint("exception row"))
				cs.Exc[ei].Val = r.value()
			}
		}
		if r.err != nil {
			return nil, r.err
		}
		s.Columns = append(s.Columns, cs)
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.remaining() != 0 {
		return nil, r.failf("%d trailing bytes after table data", r.remaining())
	}
	return s, nil
}

// appendString writes a uvarint-length-prefixed string.
func appendString(p []byte, s string) []byte {
	p = binary.AppendUvarint(p, uint64(len(s)))
	return append(p, s...)
}

// appendValue writes a full rel.Value: null flag, type, and all three
// payload fields. Exceptions and redo records may carry values whose
// payload fields are populated beyond the declared type (e.g. after
// Coerce), so all of I, F, and S are preserved bit-for-bit.
func appendValue(p []byte, v rel.Value) []byte {
	p = append(p, boolByte(v.Null), byte(v.Typ))
	p = binary.AppendVarint(p, v.I)
	p = binary.LittleEndian.AppendUint64(p, math.Float64bits(v.F))
	return appendString(p, v.S)
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// reader is a bounds-checked cursor over a payload. The first failure
// sticks in err and every later read returns zero values, so decode
// loops stay simple and can check err at their joins.
type reader struct {
	buf  []byte
	off  int
	kind string
	err  error
}

func (r *reader) remaining() int { return len(r.buf) - r.off }

func (r *reader) failf(format string, a ...any) error {
	if r.err == nil {
		r.err = fmt.Errorf("storage: corrupt %s at offset %d: %s", r.kind, r.off, fmt.Sprintf(format, a...))
	}
	return r.err
}

func (r *reader) byte(what string) byte {
	if r.err != nil {
		return 0
	}
	if r.remaining() < 1 {
		r.failf("truncated reading %s", what)
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

func (r *reader) u32(what string) uint32 {
	if r.err != nil {
		return 0
	}
	if r.remaining() < 4 {
		r.failf("truncated reading %s", what)
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64(what string) uint64 {
	if r.err != nil {
		return 0
	}
	if r.remaining() < 8 {
		r.failf("truncated reading %s", what)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

func (r *reader) uvarint(what string) uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.failf("bad varint reading %s", what)
		return 0
	}
	r.off += n
	return v
}

func (r *reader) varint(what string) int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.failf("bad varint reading %s", what)
		return 0
	}
	r.off += n
	return v
}

func (r *reader) str(what string) string {
	if r.err != nil {
		return ""
	}
	n := r.uvarint(what + " length")
	if r.err != nil {
		return ""
	}
	if n > uint64(r.remaining()) {
		r.failf("%s length %d exceeds remaining payload %d", what, n, r.remaining())
		return ""
	}
	s := string(r.buf[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

func (r *reader) value() rel.Value {
	var v rel.Value
	null := r.byte("value null flag")
	typ := r.byte("value type")
	v.I = r.varint("value int payload")
	v.F = math.Float64frombits(r.u64("value float payload"))
	v.S = r.str("value string payload")
	if r.err != nil {
		return rel.Value{}
	}
	if null > 1 {
		r.failf("value null flag %d is not a boolean", null)
		return rel.Value{}
	}
	switch rel.Type(typ) {
	case rel.TInt, rel.TFloat, rel.TString:
	default:
		r.failf("value has unknown type %d", typ)
		return rel.Value{}
	}
	v.Null = null == 1
	v.Typ = rel.Type(typ)
	return v
}
