package storage

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/obs"
)

// pagerFixture writes a multi-chunk segment file and returns a pager
// over it plus the decoded directory and the largest chunk size.
func pagerFixture(t *testing.T, rows int, budget int64, reg *obs.Registry) (*pager, *chunkedDir, int64) {
	t.Helper()
	dir := t.TempDir()
	tb := multiChunkDB(rows).Table("fact")
	enc, err := EncodeChunkedSegment(tb.Snapshot(), 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeFileSync(filepath.Join(dir, "fact.seg"), enc); err != nil {
		t.Fatal(err)
	}
	d, err := decodeChunkedDir(enc[:chunkedDirLen(enc)])
	if err != nil {
		t.Fatal(err)
	}
	var maxChunk int64
	for _, c := range d.Chunks {
		if c.Size > maxChunk {
			maxChunk = c.Size
		}
	}
	return newPager(dir, budget, reg), d, maxChunk
}

// chunkedDirLen reads the directory envelope length out of a chunked
// segment's framing (envelope header + payload length).
func chunkedDirLen(enc []byte) int64 {
	return int64(envelopeSize) + int64(uint64(enc[8])|uint64(enc[9])<<8|uint64(enc[10])<<16|uint64(enc[11])<<24|
		uint64(enc[12])<<32|uint64(enc[13])<<40|uint64(enc[14])<<48|uint64(enc[15])<<56)
}

// TestPagerBudgetNeverExceeded pins the acceptance property: resident
// bytes (the storage.pager.resident_bytes gauge) never exceed the
// budget, and the high-water mark of resident + in-flight bytes never
// exceeds budget + one chunk per concurrent loader (one, here).
func TestPagerBudgetNeverExceeded(t *testing.T) {
	reg := obs.NewRegistry()
	p, d, maxChunk := pagerFixture(t, 640, 0, reg)
	var total int64
	for _, c := range d.Chunks {
		total += c.Size
	}
	budget := total / 3
	p.budget = budget
	if int64(len(d.Chunks)) < 4 {
		t.Fatalf("fixture too small: %d chunks", len(d.Chunks))
	}
	gauge := reg.Gauge("storage.pager.resident_bytes")
	for pass := 0; pass < 3; pass++ {
		for k := range d.Chunks {
			if _, err := p.chunk("fact.seg", d, k); err != nil {
				t.Fatal(err)
			}
			if g := int64(gauge.Value()); g > budget {
				t.Fatalf("resident gauge %d exceeds budget %d", g, budget)
			}
		}
	}
	if r := p.residentBytes(); r > budget {
		t.Fatalf("resident %d exceeds budget %d", r, budget)
	}
	if pk := p.peakBytes(); pk > budget+maxChunk {
		t.Fatalf("peak %d exceeds budget %d + one chunk %d", pk, budget, maxChunk)
	}
	if reg.Counter("storage.pager.evictions").Value() == 0 {
		t.Fatal("a cache a third of the data size never evicted")
	}
	if reg.Counter("storage.pager.faults").Value() <= int64(len(d.Chunks)) {
		t.Fatal("three passes over a too-small cache should refault")
	}
}

// TestPagerUnlimitedKeepsEverything: with no budget, every chunk stays
// resident and repeat touches are pure hits.
func TestPagerUnlimitedKeepsEverything(t *testing.T) {
	reg := obs.NewRegistry()
	p, d, _ := pagerFixture(t, 320, 0, reg)
	var total int64
	for _, c := range d.Chunks {
		total += c.Size
	}
	for pass := 0; pass < 2; pass++ {
		for k := range d.Chunks {
			if _, err := p.chunk("fact.seg", d, k); err != nil {
				t.Fatal(err)
			}
		}
	}
	if p.residentBytes() != total {
		t.Fatalf("resident %d, want all %d", p.residentBytes(), total)
	}
	if v := reg.Counter("storage.pager.evictions").Value(); v != 0 {
		t.Fatalf("unlimited pager evicted %d chunks", v)
	}
	if f := reg.Counter("storage.pager.faults").Value(); f != int64(len(d.Chunks)) {
		t.Fatalf("%d faults, want exactly %d", f, len(d.Chunks))
	}
	if h := reg.Counter("storage.pager.hits").Value(); h != int64(len(d.Chunks)) {
		t.Fatalf("%d hits on second pass, want %d", h, len(d.Chunks))
	}
}

// TestPagerClockPrefersCold: under pressure the clock hand gives
// recently referenced chunks a second chance, so a hot chunk touched
// between every miss stays resident.
func TestPagerClockPrefersCold(t *testing.T) {
	reg := obs.NewRegistry()
	p, d, maxChunk := pagerFixture(t, 640, 0, reg)
	p.budget = 3 * maxChunk
	if _, err := p.chunk("fact.seg", d, 0); err != nil {
		t.Fatal(err)
	}
	for k := 1; k < len(d.Chunks); k++ {
		if _, err := p.chunk("fact.seg", d, k); err != nil {
			t.Fatal(err)
		}
		if _, err := p.chunk("fact.seg", d, 0); err != nil { // keep chunk 0 hot
			t.Fatal(err)
		}
	}
	// A recency-blind policy (FIFO) would refault the hot chunk on
	// nearly every miss (~2n faults); the reference bit must keep the
	// refault count near the compulsory n.
	faults := reg.Counter("storage.pager.faults").Value()
	if limit := int64(len(d.Chunks)) + 3; faults > limit {
		t.Fatalf("hot chunk kept getting evicted: %d faults for %d chunks (limit %d)", faults, len(d.Chunks), limit)
	}
}

// TestPagerConcurrentLoads drives the pager from many goroutines under
// -race: correctness of served data, and the documented overshoot bound
// of one chunk per concurrent loader.
func TestPagerConcurrentLoads(t *testing.T) {
	reg := obs.NewRegistry()
	p, d, maxChunk := pagerFixture(t, 640, 0, reg)
	p.budget = 3 * maxChunk
	const loaders = 8
	var wg sync.WaitGroup
	errs := make(chan error, loaders)
	for g := 0; g < loaders; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 50; i++ {
				k := rng.Intn(len(d.Chunks))
				snap, err := p.chunk("fact.seg", d, k)
				if err != nil {
					errs <- err
					return
				}
				want := d.ChunkRows
				if k == len(d.Chunks)-1 {
					want = d.RowCount - k*d.ChunkRows
				}
				if snap.RowCount != want {
					errs <- fmt.Errorf("chunk %d served %d rows, want %d", k, snap.RowCount, want)
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if r := p.residentBytes(); r > p.budget {
		t.Fatalf("resident %d exceeds budget %d", r, p.budget)
	}
	if pk := p.peakBytes(); pk > p.budget+loaders*maxChunk {
		t.Fatalf("peak %d exceeds budget %d + %d loaders × chunk %d", pk, p.budget, loaders, maxChunk)
	}
}

// TestPagerInvalidate drops a table's chunks and serves fresh bytes on
// the next touch.
func TestPagerInvalidate(t *testing.T) {
	reg := obs.NewRegistry()
	p, d, _ := pagerFixture(t, 320, 0, reg)
	for k := range d.Chunks {
		if _, err := p.chunk("fact.seg", d, k); err != nil {
			t.Fatal(err)
		}
	}
	p.invalidate("fact")
	if p.residentBytes() != 0 {
		t.Fatalf("resident %d after invalidate", p.residentBytes())
	}
	before := reg.Counter("storage.pager.faults").Value()
	if _, err := p.chunk("fact.seg", d, 0); err != nil {
		t.Fatal(err)
	}
	if reg.Counter("storage.pager.faults").Value() != before+1 {
		t.Fatal("invalidated chunk served from cache")
	}
}
