package storage

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/obs"
)

// pagerFixture writes a multi-chunk segment file and returns a pager
// over it plus the decoded directory and the largest chunk size.
func pagerFixture(t *testing.T, rows int, budget int64, reg *obs.Registry) (*pager, *chunkedDir, int64) {
	t.Helper()
	dir := t.TempDir()
	tb := multiChunkDB(rows).Table("fact")
	enc, err := EncodeChunkedSegment(tb.Snapshot(), 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeFileSync(filepath.Join(dir, "fact.seg"), enc); err != nil {
		t.Fatal(err)
	}
	d, err := decodeChunkedDir(enc[:chunkedDirLen(enc)])
	if err != nil {
		t.Fatal(err)
	}
	var maxChunk int64
	for _, c := range d.Chunks {
		if c.Size > maxChunk {
			maxChunk = c.Size
		}
	}
	return newPager(dir, budget, reg), d, maxChunk
}

// chunkedDirLen reads the directory envelope length out of a chunked
// segment's framing (envelope header + payload length).
func chunkedDirLen(enc []byte) int64 {
	return int64(envelopeSize) + int64(uint64(enc[8])|uint64(enc[9])<<8|uint64(enc[10])<<16|uint64(enc[11])<<24|
		uint64(enc[12])<<32|uint64(enc[13])<<40|uint64(enc[14])<<48|uint64(enc[15])<<56)
}

// TestPagerBudgetNeverExceeded pins the acceptance property: resident
// bytes (the storage.pager.resident_bytes gauge) never exceed the
// budget, and the high-water mark of resident + in-flight bytes never
// exceeds budget + one chunk per concurrent loader (one, here).
func TestPagerBudgetNeverExceeded(t *testing.T) {
	reg := obs.NewRegistry()
	p, d, maxChunk := pagerFixture(t, 640, 0, reg)
	var total int64
	for _, c := range d.Chunks {
		total += c.Size
	}
	budget := total / 3
	p.budget = budget
	if int64(len(d.Chunks)) < 4 {
		t.Fatalf("fixture too small: %d chunks", len(d.Chunks))
	}
	gauge := reg.Gauge("storage.pager.resident_bytes")
	for pass := 0; pass < 3; pass++ {
		for k := range d.Chunks {
			if _, err := p.chunk("fact.seg", d, k); err != nil {
				t.Fatal(err)
			}
			if g := int64(gauge.Value()); g > budget {
				t.Fatalf("resident gauge %d exceeds budget %d", g, budget)
			}
		}
	}
	if r := p.residentBytes(); r > budget {
		t.Fatalf("resident %d exceeds budget %d", r, budget)
	}
	if pk := p.peakBytes(); pk > budget+maxChunk {
		t.Fatalf("peak %d exceeds budget %d + one chunk %d", pk, budget, maxChunk)
	}
	if reg.Counter("storage.pager.evictions").Value() == 0 {
		t.Fatal("a cache a third of the data size never evicted")
	}
	if reg.Counter("storage.pager.faults").Value() <= int64(len(d.Chunks)) {
		t.Fatal("three passes over a too-small cache should refault")
	}
}

// TestPagerUnlimitedKeepsEverything: with no budget, every chunk stays
// resident and repeat touches are pure hits.
func TestPagerUnlimitedKeepsEverything(t *testing.T) {
	reg := obs.NewRegistry()
	p, d, _ := pagerFixture(t, 320, 0, reg)
	var total int64
	for _, c := range d.Chunks {
		total += c.Size
	}
	for pass := 0; pass < 2; pass++ {
		for k := range d.Chunks {
			if _, err := p.chunk("fact.seg", d, k); err != nil {
				t.Fatal(err)
			}
		}
	}
	if p.residentBytes() != total {
		t.Fatalf("resident %d, want all %d", p.residentBytes(), total)
	}
	if v := reg.Counter("storage.pager.evictions").Value(); v != 0 {
		t.Fatalf("unlimited pager evicted %d chunks", v)
	}
	if f := reg.Counter("storage.pager.faults").Value(); f != int64(len(d.Chunks)) {
		t.Fatalf("%d faults, want exactly %d", f, len(d.Chunks))
	}
	if h := reg.Counter("storage.pager.hits").Value(); h != int64(len(d.Chunks)) {
		t.Fatalf("%d hits on second pass, want %d", h, len(d.Chunks))
	}
}

// TestPagerClockPrefersCold: under pressure the clock hand gives
// recently referenced chunks a second chance, so a hot chunk touched
// between every miss stays resident.
func TestPagerClockPrefersCold(t *testing.T) {
	reg := obs.NewRegistry()
	p, d, maxChunk := pagerFixture(t, 640, 0, reg)
	p.budget = 3 * maxChunk
	if _, err := p.chunk("fact.seg", d, 0); err != nil {
		t.Fatal(err)
	}
	for k := 1; k < len(d.Chunks); k++ {
		if _, err := p.chunk("fact.seg", d, k); err != nil {
			t.Fatal(err)
		}
		if _, err := p.chunk("fact.seg", d, 0); err != nil { // keep chunk 0 hot
			t.Fatal(err)
		}
	}
	// A recency-blind policy (FIFO) would refault the hot chunk on
	// nearly every miss (~2n faults); the reference bit must keep the
	// refault count near the compulsory n.
	faults := reg.Counter("storage.pager.faults").Value()
	if limit := int64(len(d.Chunks)) + 3; faults > limit {
		t.Fatalf("hot chunk kept getting evicted: %d faults for %d chunks (limit %d)", faults, len(d.Chunks), limit)
	}
}

// TestPagerConcurrentLoads drives the pager from many goroutines under
// -race: correctness of served data, and the documented overshoot bound
// of one chunk per concurrent loader.
func TestPagerConcurrentLoads(t *testing.T) {
	reg := obs.NewRegistry()
	p, d, maxChunk := pagerFixture(t, 640, 0, reg)
	p.budget = 3 * maxChunk
	const loaders = 8
	var wg sync.WaitGroup
	errs := make(chan error, loaders)
	for g := 0; g < loaders; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 50; i++ {
				k := rng.Intn(len(d.Chunks))
				snap, err := p.chunk("fact.seg", d, k)
				if err != nil {
					errs <- err
					return
				}
				want := d.ChunkRows
				if k == len(d.Chunks)-1 {
					want = d.RowCount - k*d.ChunkRows
				}
				if snap.RowCount != want {
					errs <- fmt.Errorf("chunk %d served %d rows, want %d", k, snap.RowCount, want)
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if r := p.residentBytes(); r > p.budget {
		t.Fatalf("resident %d exceeds budget %d", r, p.budget)
	}
	if pk := p.peakBytes(); pk > p.budget+loaders*maxChunk {
		t.Fatalf("peak %d exceeds budget %d + %d loaders × chunk %d", pk, p.budget, loaders, maxChunk)
	}
}

// TestPagerInvalidate drops a table's chunks and serves fresh bytes on
// the next touch.
func TestPagerInvalidate(t *testing.T) {
	reg := obs.NewRegistry()
	p, d, _ := pagerFixture(t, 320, 0, reg)
	for k := range d.Chunks {
		if _, err := p.chunk("fact.seg", d, k); err != nil {
			t.Fatal(err)
		}
	}
	p.invalidate("fact")
	if p.residentBytes() != 0 {
		t.Fatalf("resident %d after invalidate", p.residentBytes())
	}
	before := reg.Counter("storage.pager.faults").Value()
	if _, err := p.chunk("fact.seg", d, 0); err != nil {
		t.Fatal(err)
	}
	if reg.Counter("storage.pager.faults").Value() != before+1 {
		t.Fatal("invalidated chunk served from cache")
	}
}

// TestPagerMetricsCompleteUnderRace pins the duplicate-admission
// accounting: every chunk request increments exactly one of hits or
// faults, even when concurrent loaders race to admit the same chunk
// (the raced-out load shows up in storage.pager.dup_loads instead of
// vanishing from both counters).
func TestPagerMetricsCompleteUnderRace(t *testing.T) {
	reg := obs.NewRegistry()
	p, d, _ := pagerFixture(t, 640, 0, reg)
	const loaders = 8
	var total int64
	for k := range d.Chunks {
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < loaders; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				if _, err := p.chunk("fact.seg", d, k); err != nil {
					t.Error(err)
				}
			}()
		}
		close(start)
		wg.Wait()
		total += loaders
	}
	hits := reg.Counter("storage.pager.hits").Value()
	faults := reg.Counter("storage.pager.faults").Value()
	if hits+faults != total {
		t.Fatalf("hits %d + faults %d = %d requests accounted, want %d", hits, faults, hits+faults, total)
	}
	// Unlimited budget: each chunk is admitted exactly once.
	if faults != int64(len(d.Chunks)) {
		t.Fatalf("faults %d, want one admission per chunk (%d)", faults, len(d.Chunks))
	}
}

// TestPagerInvalidateKeepsClockOrder pins the hand clamp: dropping a
// table's chunks must not reset the sweep, or a recently referenced
// early-ring survivor loses its second chance to an unreferenced
// late-ring one.
func TestPagerInvalidateKeepsClockOrder(t *testing.T) {
	reg := obs.NewRegistry()
	p, d, _ := pagerFixture(t, 640, 0, reg)

	// A second table ("dim") in the same pager directory.
	dimTB := multiChunkDB(320).Table("fact")
	enc, err := EncodeChunkedSegment(dimTB.Snapshot(), 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeFileSync(filepath.Join(p.dir, "dim.seg"), enc); err != nil {
		t.Fatal(err)
	}
	dd, err := decodeChunkedDir(enc[:chunkedDirLen(enc)])
	if err != nil {
		t.Fatal(err)
	}
	dd.Name = "dim"

	// Ring [f0 d0 f1]; hand parked on f1 after a sweep that cleared d0
	// and re-referenced f0 (a hit after the hand passed it).
	for _, ld := range []struct {
		file string
		dir  *chunkedDir
		k    int
	}{{"fact.seg", d, 0}, {"dim.seg", dd, 0}, {"fact.seg", d, 1}} {
		if _, err := p.chunk(ld.file, ld.dir, ld.k); err != nil {
			t.Fatal(err)
		}
	}
	p.mu.Lock()
	p.entries[chunkKey{"fact", "fact.seg", 0}].ref = true
	p.entries[chunkKey{"dim", "dim.seg", 0}].ref = false
	p.entries[chunkKey{"fact", "fact.seg", 1}].ref = true
	p.hand = 2
	p.mu.Unlock()

	p.invalidate("dim")
	if p.hand != 1 {
		t.Fatalf("hand %d after invalidating one entry before it, want 1", p.hand)
	}

	// Force exactly one eviction by admitting f2 with one byte short of
	// room. A clamped hand sweeps f1 → f0 → f1 and evicts f1; the old
	// reset-to-zero bug swept f0 → f1 → f0 and evicted the recently
	// referenced f0.
	p.budget = p.residentBytes() + d.Chunks[2].Size - 1
	if _, err := p.chunk("fact.seg", d, 2); err != nil {
		t.Fatal(err)
	}
	p.mu.Lock()
	_, f0 := p.entries[chunkKey{"fact", "fact.seg", 0}]
	_, f1 := p.entries[chunkKey{"fact", "fact.seg", 1}]
	p.mu.Unlock()
	if !f0 || f1 {
		t.Fatalf("clock order skewed: f0 resident=%v f1 resident=%v, want f1 evicted and f0 kept", f0, f1)
	}

	// Hand past every survivor clamps into range rather than indexing
	// out of the ring.
	p.mu.Lock()
	p.hand = len(p.ring)
	p.mu.Unlock()
	p.invalidate("fact")
	if p.hand != 0 || p.residentBytes() != 0 {
		t.Fatalf("hand %d resident %d after invalidating everything", p.hand, p.residentBytes())
	}
}

// TestPagerInvalidatePinnedAccounting: invalidating a table while a
// scan worker holds a chunk pinned must keep the pinned bytes in the
// residency accounting until the last unpin (the snapshot is still in
// memory), while making the dead entry unreachable to new readers —
// and dropping it must not disturb a fresh admission under the same
// key.
func TestPagerInvalidatePinnedAccounting(t *testing.T) {
	reg := obs.NewRegistry()
	p, d, _ := pagerFixture(t, 320, 0, reg)
	snap, release, err := p.chunkPinned("fact.seg", d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if snap.RowCount != d.ChunkRows {
		t.Fatalf("pinned chunk served %d rows, want %d", snap.RowCount, d.ChunkRows)
	}
	if _, err := p.chunk("fact.seg", d, 1); err != nil {
		t.Fatal(err)
	}
	size := d.Chunks[0].Size

	p.invalidate("fact")
	if got := p.residentBytes(); got != size {
		t.Fatalf("resident %d after invalidating around a pinned chunk, want the pinned %d", got, size)
	}
	if g := int64(reg.Gauge("storage.pager.resident_bytes").Value()); g != size {
		t.Fatalf("resident gauge %d, want %d", g, size)
	}

	// The dead entry is unmapped: a new reader of the same chunk faults
	// a fresh copy instead of hitting the invalidated one.
	faults := reg.Counter("storage.pager.faults").Value()
	if _, err := p.chunk("fact.seg", d, 0); err != nil {
		t.Fatal(err)
	}
	if reg.Counter("storage.pager.faults").Value() != faults+1 {
		t.Fatal("invalidated-but-pinned chunk was served to a new reader")
	}

	// The last unpin drops the dead entry's bytes, leaving only the
	// fresh admission — which must survive the drop intact.
	release()
	release() // idempotent
	if got := p.residentBytes(); got != size {
		t.Fatalf("resident %d after last unpin, want the fresh admission's %d", got, size)
	}
	hits := reg.Counter("storage.pager.hits").Value()
	if _, err := p.chunk("fact.seg", d, 0); err != nil {
		t.Fatal(err)
	}
	if reg.Counter("storage.pager.hits").Value() != hits+1 {
		t.Fatal("fresh admission vanished when the dead entry dropped")
	}
}

// TestPagerPinnedChunkSurvivesPressure: a pinned chunk is never chosen
// as a victim; after release it is evictable again.
func TestPagerPinnedChunkSurvivesPressure(t *testing.T) {
	reg := obs.NewRegistry()
	p, d, maxChunk := pagerFixture(t, 640, 0, reg)
	p.budget = 2 * maxChunk
	snap, release, err := p.chunkPinned("fact.seg", d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if snap.RowCount != d.ChunkRows {
		t.Fatalf("pinned chunk served %d rows, want %d", snap.RowCount, d.ChunkRows)
	}
	for pass := 0; pass < 2; pass++ {
		for k := 1; k < len(d.Chunks); k++ {
			if _, err := p.chunk("fact.seg", d, k); err != nil {
				t.Fatal(err)
			}
		}
	}
	p.mu.Lock()
	_, pinned := p.entries[chunkKey{"fact", "fact.seg", 0}]
	p.mu.Unlock()
	if !pinned {
		t.Fatal("pinned chunk was evicted under pressure")
	}
	release()
	release() // idempotent
	p.mu.Lock()
	pins := p.entries[chunkKey{"fact", "fact.seg", 0}].pins
	p.mu.Unlock()
	if pins != 0 {
		t.Fatalf("pins %d after release, want 0", pins)
	}
	for pass := 0; pass < 3; pass++ {
		for k := 1; k < len(d.Chunks); k++ {
			if _, err := p.chunk("fact.seg", d, k); err != nil {
				t.Fatal(err)
			}
		}
	}
	p.mu.Lock()
	_, still := p.entries[chunkKey{"fact", "fact.seg", 0}]
	p.mu.Unlock()
	if still {
		t.Fatal("released chunk never evicted under sustained pressure")
	}
}
