package storage

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/rel"
)

// corpusEntry renders one seed in the Go fuzzing corpus file format.
func corpusEntry(data []byte) []byte {
	return []byte("go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n")
}

// TestFuzzCorpusChecked pins the checked-in fuzz corpora under
// testdata/fuzz/: the interesting wire-format shapes are committed so
// CI fuzz-smoke starts from real coverage instead of an empty corpus.
// Regenerate with -update after a (version-bumped) format change.
func TestFuzzCorpusChecked(t *testing.T) {
	chunked := func(tb *rel.Table, rows int) []byte {
		enc, err := EncodeChunkedSegment(tb.Snapshot(), rows)
		if err != nil {
			t.Fatal(err)
		}
		return enc
	}
	book := fixtureDB().Table("book")
	multi := multiChunkDB(200).Table("fact")
	empty := rel.NewTable("e", []rel.Column{{Name: rel.IDColumn, Typ: rel.TInt}})

	batched := emptyRedoLog(RedoBatchVersion)[:redoHeaderSize]
	batched = append(batched, encodeRedoBatchRecord("book", [][]rel.Value{
		{rel.Int(1), rel.Str("x")},
		{rel.Int(2), rel.Str("y")},
		{rel.NullOf(rel.TInt), rel.Str("z")},
	})...)
	batched = append(batched, encodeRedoFooter(3)...)
	single := emptyRedoLog(RedoVersion)[:redoHeaderSize]
	single = append(single, encodeRedoRecord("book", []rel.Value{rel.Int(1), rel.Str("x")})...)
	single = append(single, encodeRedoFooter(1)...)

	corpora := map[string]map[string][]byte{
		"FuzzChunkDecode": {
			"book-64":        chunked(book, 64),
			"multichunk-64":  chunked(multi, 64),
			"empty-default":  chunked(empty, DefaultChunkRows),
			"dir-garbage":    wrapEnvelope(chunkDirMagic, ChunkSegmentVersion, []byte{0x01, 0x61, 0x00, 0xff, 0xff, 0xff, 0xff}),
			"truncated-book": chunked(book, 64)[:envelopeSize+9],
		},
		"FuzzRedoDecode": {
			"empty-v1":   emptyRedoLog(RedoVersion),
			"empty-v2":   emptyRedoLog(RedoBatchVersion),
			"single-v1":  single,
			"batched-v2": batched,
		},
		"FuzzSegmentDecode": {
			"book":  EncodeSegment(book.Snapshot()),
			"empty": EncodeSegment(empty.Snapshot()),
		},
	}
	for fuzzName, entries := range corpora {
		for name, data := range entries {
			path := filepath.Join("testdata", "fuzz", fuzzName, name)
			want := corpusEntry(data)
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, want, 0o644); err != nil {
					t.Fatal(err)
				}
				continue
			}
			got, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("corpus entry missing (regenerate with -update): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("corpus entry %s drifted from the current encoder (regenerate with -update)", path)
			}
		}
	}
	if t.Failed() {
		t.Fatal(fmt.Sprintf("checked-in corpora under %s are stale", filepath.Join("testdata", "fuzz")))
	}
}
