package storage

import (
	"bytes"
	"encoding/binary"
	"flag"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/rel"
)

var updateGolden = flag.Bool("update", false, "rewrite golden segment files")

func TestSegmentEncodeDeterministic(t *testing.T) {
	for _, tb := range fixtureDB().Tables() {
		a := EncodeSegment(tb.Snapshot())
		b := EncodeSegment(tb.Snapshot())
		if !bytes.Equal(a, b) {
			t.Fatalf("table %q: two encodings of the same table differ", tb.Name)
		}
	}
}

func TestSegmentRoundTrip(t *testing.T) {
	for _, tb := range fixtureDB().Tables() {
		snap, err := DecodeSegment(EncodeSegment(tb.Snapshot()))
		if err != nil {
			t.Fatalf("table %q: %v", tb.Name, err)
		}
		got, err := rel.TableFromSnapshot(snap)
		if err != nil {
			t.Fatalf("table %q: %v", tb.Name, err)
		}
		tablesBitEqual(t, tb, got)
	}
}

// TestSegmentGolden pins the wire format byte for byte: any change to
// the encoding must come with a version bump and a regenerated golden
// file (go test ./internal/storage -run Golden -update).
func TestSegmentGolden(t *testing.T) {
	for _, tb := range fixtureDB().Tables() {
		enc := EncodeSegment(tb.Snapshot())
		path := filepath.Join("testdata", "golden", tb.Name+".seg")
		if *updateGolden {
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, enc, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("golden file missing (regenerate with -update): %v", err)
		}
		if !bytes.Equal(enc, want) {
			t.Fatalf("table %q: encoding differs from golden file %s (%d vs %d bytes) — format drifted without a version bump",
				tb.Name, path, len(enc), len(want))
		}
		// The golden bytes must also still decode to the fixture.
		snap, err := DecodeSegment(want)
		if err != nil {
			t.Fatal(err)
		}
		got, err := rel.TableFromSnapshot(snap)
		if err != nil {
			t.Fatal(err)
		}
		tablesBitEqual(t, tb, got)
	}
}

// TestSegmentVersionBump exercises the forward-compatibility path: a
// segment from a future format version must be rejected with a
// descriptive error, not misparsed.
func TestSegmentVersionBump(t *testing.T) {
	enc := EncodeSegment(fixtureDB().Tables()[0].Snapshot())
	future := append([]byte(nil), enc...)
	binary.LittleEndian.PutUint32(future[4:8], SegmentVersion+1)
	_, err := DecodeSegment(future)
	if err == nil || !strings.Contains(err.Error(), "unsupported segment format version") {
		t.Fatalf("future-version segment: %v", err)
	}
	// Same gate on the other file kinds.
	man := &Manifest{FormatVersion: SegmentVersion, RedoFile: RedoName}
	mb, err := encodeManifest(man)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint32(mb[4:8], ManifestVersion+1)
	// Re-wrapping is not needed: version is outside the checksummed
	// payload, so only the version check can fire.
	if _, err := decodeManifest(mb); err == nil || !strings.Contains(err.Error(), "unsupported manifest format version") {
		t.Fatalf("future-version manifest: %v", err)
	}
	log := emptyRedoLog(RedoBatchVersion)
	binary.LittleEndian.PutUint32(log[4:8], RedoBatchVersion+1)
	if _, _, err := readRedo(log); err == nil || !strings.Contains(err.Error(), "unsupported redo log format version") {
		t.Fatalf("future-version redo log: %v", err)
	}
	chunked, err := EncodeChunkedSegment(fixtureDB().Tables()[0].Snapshot(), 64)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint32(chunked[4:8], ChunkSegmentVersion+1)
	if _, err := DecodeChunkedSegment(chunked); err == nil || !strings.Contains(err.Error(), "unsupported chunked segment directory format version") {
		t.Fatalf("future-version chunked segment: %v", err)
	}
}

// TestSegmentAccounting ties the in-memory byte/page accounting to the
// serialized representation: the decoded table must account exactly
// like the original, and the segment file must stay within a linear
// envelope of the accounted size (no hidden blow-up, no hidden
// compression the accounting misses).
func TestSegmentAccounting(t *testing.T) {
	for _, tb := range fixtureDB().Tables() {
		snap := tb.Snapshot()
		enc := EncodeSegment(snap)
		decSnap, err := DecodeSegment(enc)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := rel.TableFromSnapshot(decSnap)
		if err != nil {
			t.Fatal(err)
		}
		if dec.Bytes() != tb.Bytes() || dec.Pages() != tb.Pages() {
			t.Fatalf("table %q: decoded accounting %d bytes/%d pages, original %d/%d",
				tb.Name, dec.Bytes(), dec.Pages(), tb.Bytes(), tb.Pages())
		}
		// Structural upper bound on the wire size, computed from the
		// snapshot shape: envelope + table header + per-column header,
		// bitmap words, vectors (8 bytes per numeric row, <=5 bytes per
		// string code), dictionary, and exceptions.
		bound := envelopeSize + 64 + len(snap.Name) + len(snap.Parent)
		for i := range snap.Columns {
			cs := &snap.Columns[i]
			bound += 64 + len(cs.Col.Name) + 8*len(cs.NullWords)
			switch cs.Col.Typ {
			case rel.TInt, rel.TFloat:
				bound += 8 * snap.RowCount
			case rel.TString:
				bound += 5 * snap.RowCount
				for _, d := range cs.Dict {
					bound += 10 + len(d)
				}
			}
			for _, e := range cs.Exc {
				bound += 40 + len(e.Val.S)
			}
		}
		if len(enc) > bound {
			t.Fatalf("table %q: segment is %d bytes, structural bound is %d", tb.Name, len(enc), bound)
		}
		if int64(len(enc)) > 2*tb.Bytes()+4096 {
			t.Fatalf("table %q: segment %d bytes vs accounted %d — serialization overhead out of envelope",
				tb.Name, len(enc), tb.Bytes())
		}
	}
}

// TestEnvelopeRejects drives the shared file envelope through its
// failure modes directly.
func TestEnvelopeRejects(t *testing.T) {
	payload := []byte("hello payload")
	good := wrapEnvelope(segMagic, SegmentVersion, payload)
	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantSub string
	}{
		{"too short", func(d []byte) []byte { return d[:envelopeSize-1] }, "truncated"},
		{"bad magic", func(d []byte) []byte { d[0] ^= 0xff; return d }, "not a segment file"},
		{"bad length", func(d []byte) []byte { d[8]++; return d }, "disagrees with file size"},
		{"flipped payload", func(d []byte) []byte { d[envelopeSize] ^= 1; return d }, "checksum mismatch"},
		{"flipped crc", func(d []byte) []byte { d[16] ^= 1; return d }, "checksum mismatch"},
		{"truncated payload", func(d []byte) []byte { return d[:len(d)-1] }, "disagrees with file size"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := tc.mutate(append([]byte(nil), good...))
			_, err := openEnvelope("segment", segMagic, SegmentVersion, d)
			if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("got %v, want error containing %q", err, tc.wantSub)
			}
		})
	}
	got, err := openEnvelope("segment", segMagic, SegmentVersion, good)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("intact envelope rejected: %v", err)
	}
	if crc32.Checksum(payload, crcTable) == 0 {
		t.Fatal("degenerate checksum table")
	}
}
