package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"

	"repro/internal/rel"
)

// The redo log records row appends made after Save, so a reopened
// store replays them deterministically and generation counters land
// exactly where they were before the restart. Layout:
//
//	"XRDO" | u32 version | record... | footer
//	v1 record body := string table name | uvarint value count | value...
//	v2 record body := string table name | uvarint row count |
//	                  (uvarint value count | value...)...
//	record := u32 body length | u32 CRC32-C of body | body
//	footer := "XEND" | u32 row count | u32 CRC32-C of footer prefix
//
// Version 1 frames one row per record; version 2 (the group-commit
// format) frames one record per batch of rows appended to the same
// table under a single fsync. The footer always counts rows, so the
// bounded-replay guarantee is framing-independent.
//
// Records are self-checksummed, and the footer pins the row count: an
// append overwrites the old footer with the new record and writes a
// fresh footer after it. Truncating the file anywhere — even exactly
// at a record boundary — removes or damages the footer, so readRedo
// reports an error instead of silently replaying a prefix. A crash
// mid-append likewise leaves a damaged tail and the store refuses to
// open (the append was never acknowledged, so no acknowledged write is
// lost).

// RedoVersion is the original one-row-per-record redo format.
// RedoBatchVersion frames one record per group-committed batch; new
// stores write it, and readRedo accepts both.
const (
	RedoVersion      = 1
	RedoBatchVersion = 2
)

var (
	redoMagic    = [4]byte{'X', 'R', 'D', 'O'}
	redoEndMagic = [4]byte{'X', 'E', 'N', 'D'}
)

// redoHeaderSize is the fixed file header: magic + version.
// redoFooterSize is the commit marker: magic + record count + CRC.
const (
	redoHeaderSize = 4 + 4
	redoFooterSize = 4 + 4 + 4
)

// redoRecord is one replayable append.
type redoRecord struct {
	Table string
	Row   []rel.Value
}

// encodeRedoHeader returns the 8-byte file header for the given format
// version.
func encodeRedoHeader(version uint32) []byte {
	out := make([]byte, 0, redoHeaderSize)
	out = append(out, redoMagic[:]...)
	return binary.LittleEndian.AppendUint32(out, version)
}

// encodeRedoFooter returns the commit marker for a log holding count
// records.
func encodeRedoFooter(count uint32) []byte {
	out := make([]byte, 0, redoFooterSize)
	out = append(out, redoEndMagic[:]...)
	out = binary.LittleEndian.AppendUint32(out, count)
	return binary.LittleEndian.AppendUint32(out, crc32.Checksum(out, crcTable))
}

// emptyRedoLog is the initial file Save and compaction write: header
// plus a zero-record footer.
func emptyRedoLog(version uint32) []byte {
	return append(encodeRedoHeader(version), encodeRedoFooter(0)...)
}

// frameRedoBody wraps a record body with its length and checksum.
func frameRedoBody(body []byte) []byte {
	out := make([]byte, 0, 8+len(body))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(body)))
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(body, crcTable))
	return append(out, body...)
}

// encodeRedoRecord frames one append as a checksummed v1 record.
func encodeRedoRecord(table string, row []rel.Value) []byte {
	var body []byte
	body = appendString(body, table)
	body = binary.AppendUvarint(body, uint64(len(row)))
	for _, v := range row {
		body = appendValue(body, v)
	}
	return frameRedoBody(body)
}

// encodeRedoBatchRecord frames a batch of rows appended to one table
// as a single checksummed v2 record.
func encodeRedoBatchRecord(table string, rows [][]rel.Value) []byte {
	var body []byte
	body = appendString(body, table)
	body = binary.AppendUvarint(body, uint64(len(rows)))
	for _, row := range rows {
		body = binary.AppendUvarint(body, uint64(len(row)))
		for _, v := range row {
			body = appendValue(body, v)
		}
	}
	return frameRedoBody(body)
}

// readRedo parses a redo log file's full contents and reports the
// file's format version (so later appends keep the framing). Any
// structural damage — bad magic, wrong version, truncated record,
// checksum mismatch, missing or disagreeing footer, garbage body — is
// an error; the caller treats the store as unopenable rather than
// replaying a prefix silently. Batched v2 records are flattened to one
// redoRecord per row, in order.
func readRedo(data []byte) ([]redoRecord, uint32, error) {
	if len(data) < redoHeaderSize+redoFooterSize {
		return nil, 0, fmt.Errorf("storage: redo log truncated: %d bytes, need at least %d", len(data), redoHeaderSize+redoFooterSize)
	}
	if [4]byte(data[:4]) != redoMagic {
		return nil, 0, fmt.Errorf("storage: not a redo log (magic %q)", data[:4])
	}
	version := binary.LittleEndian.Uint32(data[4:8])
	if version != RedoVersion && version != RedoBatchVersion {
		return nil, 0, fmt.Errorf("storage: unsupported redo log format version %d (this build reads versions %d and %d)", version, RedoVersion, RedoBatchVersion)
	}
	foot := data[len(data)-redoFooterSize:]
	if [4]byte(foot[:4]) != redoEndMagic {
		return nil, 0, fmt.Errorf("storage: redo log has no commit footer (truncated or crashed mid-append)")
	}
	if got, want := crc32.Checksum(foot[:8], crcTable), binary.LittleEndian.Uint32(foot[8:]); got != want {
		return nil, 0, fmt.Errorf("storage: redo log footer checksum mismatch: footer says %08x, hashes to %08x", want, got)
	}
	count := binary.LittleEndian.Uint32(foot[4:8])
	var recs []redoRecord
	off := redoHeaderSize
	end := len(data) - redoFooterSize
	for off < end {
		if end-off < 8 {
			return nil, 0, fmt.Errorf("storage: redo log truncated at offset %d: partial record header", off)
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		want := binary.LittleEndian.Uint32(data[off+4:])
		off += 8
		if n < 0 || n > end-off {
			return nil, 0, fmt.Errorf("storage: redo log truncated at offset %d: record body of %d bytes exceeds file", off, n)
		}
		body := data[off : off+n]
		if got := crc32.Checksum(body, crcTable); got != want {
			return nil, 0, fmt.Errorf("storage: redo record at offset %d checksum mismatch: record says %08x, body hashes to %08x", off, want, got)
		}
		if version == RedoVersion {
			rec, err := decodeRedoBody(body)
			if err != nil {
				return nil, 0, fmt.Errorf("storage: redo record at offset %d: %w", off, err)
			}
			recs = append(recs, rec)
		} else {
			batch, err := decodeRedoBatchBody(body)
			if err != nil {
				return nil, 0, fmt.Errorf("storage: redo record at offset %d: %w", off, err)
			}
			recs = append(recs, batch...)
		}
		off += n
	}
	if uint32(len(recs)) != count {
		return nil, 0, fmt.Errorf("storage: redo log holds %d rows, footer says %d", len(recs), count)
	}
	return recs, version, nil
}

// decodeRedoBody parses one checksum-verified record body.
func decodeRedoBody(body []byte) (redoRecord, error) {
	r := &reader{buf: body, kind: "redo record"}
	var rec redoRecord
	rec.Table = r.str("table name")
	if r.err == nil && rec.Table == "" {
		r.failf("empty table name")
	}
	nvals := r.uvarint("value count")
	if r.err == nil && nvals > uint64(r.remaining()) {
		// Each value costs at least 11 body bytes; cheap sanity bound
		// before allocating.
		r.failf("value count %d exceeds remaining body %d", nvals, r.remaining())
	}
	if r.err != nil {
		return redoRecord{}, r.err
	}
	rec.Row = make([]rel.Value, nvals)
	for i := range rec.Row {
		rec.Row[i] = r.value()
	}
	if r.err != nil {
		return redoRecord{}, r.err
	}
	if r.remaining() != 0 {
		return redoRecord{}, r.failf("%d trailing bytes after row values", r.remaining())
	}
	return rec, nil
}

// decodeRedoBatchBody parses one checksum-verified v2 record body into
// one redoRecord per row.
func decodeRedoBatchBody(body []byte) ([]redoRecord, error) {
	r := &reader{buf: body, kind: "redo record"}
	table := r.str("table name")
	if r.err == nil && table == "" {
		r.failf("empty table name")
	}
	nrows := r.uvarint("row count")
	if r.err == nil && nrows > uint64(r.remaining()) {
		// Each row costs at least one body byte; cheap sanity bound
		// before allocating.
		r.failf("row count %d exceeds remaining body %d", nrows, r.remaining())
	}
	if r.err != nil {
		return nil, r.err
	}
	recs := make([]redoRecord, 0, nrows)
	for i := uint64(0); i < nrows; i++ {
		nvals := r.uvarint("value count")
		if r.err == nil && nvals > uint64(r.remaining()) {
			r.failf("value count %d exceeds remaining body %d", nvals, r.remaining())
		}
		if r.err != nil {
			return nil, r.err
		}
		row := make([]rel.Value, nvals)
		for j := range row {
			row[j] = r.value()
		}
		if r.err != nil {
			return nil, r.err
		}
		recs = append(recs, redoRecord{Table: table, Row: row})
	}
	if r.remaining() != 0 {
		return nil, r.failf("%d trailing bytes after batch rows", r.remaining())
	}
	return recs, nil
}

// appendRedoBatch writes a batch of appends over the old footer at
// footOff, follows it with the footer for count total rows, truncates
// any stale bytes from an earlier failed write, and fsyncs once — the
// group commit. In a v2 log, consecutive rows to the same table fold
// into one batched record; in a v1 log each row gets its own record
// (the framing matches the file's header version either way). The
// footer write is the commit: a crash before it leaves a footer-less
// tail that readRedo rejects.
func appendRedoBatch(path string, version uint32, recs []redoRecord, footOff int64, count uint32) (newFootOff int64, err error) {
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return 0, fmt.Errorf("storage: opening redo log: %w", err)
	}
	defer f.Close()
	var buf []byte
	if version == RedoVersion {
		for i := range recs {
			buf = append(buf, encodeRedoRecord(recs[i].Table, recs[i].Row)...)
		}
	} else {
		for i := 0; i < len(recs); {
			j := i + 1
			for j < len(recs) && recs[j].Table == recs[i].Table {
				j++
			}
			rows := make([][]rel.Value, 0, j-i)
			for k := i; k < j; k++ {
				rows = append(rows, recs[k].Row)
			}
			buf = append(buf, encodeRedoBatchRecord(recs[i].Table, rows)...)
			i = j
		}
	}
	recLen := int64(len(buf))
	buf = append(buf, encodeRedoFooter(count)...)
	if _, err := f.WriteAt(buf, footOff); err != nil {
		return 0, fmt.Errorf("storage: appending redo batch: %w", err)
	}
	if err := f.Truncate(footOff + int64(len(buf))); err != nil {
		return 0, fmt.Errorf("storage: truncating redo log: %w", err)
	}
	if err := f.Sync(); err != nil {
		return 0, fmt.Errorf("storage: syncing redo log: %w", err)
	}
	return footOff + recLen, nil
}
