package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"

	"repro/internal/rel"
)

// The redo log records row appends made after Save, so a reopened
// store replays them deterministically and generation counters land
// exactly where they were before the restart. Layout:
//
//	"XRDO" | u32 version | record... | footer
//	record := u32 body length | u32 CRC32-C of body | body
//	body   := string table name | uvarint value count | value...
//	footer := "XEND" | u32 record count | u32 CRC32-C of footer prefix
//
// Records are self-checksummed, and the footer pins the record count:
// an append overwrites the old footer with the new record and writes a
// fresh footer after it. Truncating the file anywhere — even exactly
// at a record boundary — removes or damages the footer, so readRedo
// reports an error instead of silently replaying a prefix. A crash
// mid-append likewise leaves a damaged tail and the store refuses to
// open (the append was never acknowledged, so no acknowledged write is
// lost).

// RedoVersion is the redo log format version.
const RedoVersion = 1

var (
	redoMagic    = [4]byte{'X', 'R', 'D', 'O'}
	redoEndMagic = [4]byte{'X', 'E', 'N', 'D'}
)

// redoHeaderSize is the fixed file header: magic + version.
// redoFooterSize is the commit marker: magic + record count + CRC.
const (
	redoHeaderSize = 4 + 4
	redoFooterSize = 4 + 4 + 4
)

// redoRecord is one replayable append.
type redoRecord struct {
	Table string
	Row   []rel.Value
}

// encodeRedoHeader returns the 8-byte file header.
func encodeRedoHeader() []byte {
	out := make([]byte, 0, redoHeaderSize)
	out = append(out, redoMagic[:]...)
	return binary.LittleEndian.AppendUint32(out, RedoVersion)
}

// encodeRedoFooter returns the commit marker for a log holding count
// records.
func encodeRedoFooter(count uint32) []byte {
	out := make([]byte, 0, redoFooterSize)
	out = append(out, redoEndMagic[:]...)
	out = binary.LittleEndian.AppendUint32(out, count)
	return binary.LittleEndian.AppendUint32(out, crc32.Checksum(out, crcTable))
}

// emptyRedoLog is the initial file Save writes: header plus a
// zero-record footer.
func emptyRedoLog() []byte {
	return append(encodeRedoHeader(), encodeRedoFooter(0)...)
}

// encodeRedoRecord frames one append as a checksummed record.
func encodeRedoRecord(table string, row []rel.Value) []byte {
	var body []byte
	body = appendString(body, table)
	body = binary.AppendUvarint(body, uint64(len(row)))
	for _, v := range row {
		body = appendValue(body, v)
	}
	out := make([]byte, 0, 8+len(body))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(body)))
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(body, crcTable))
	return append(out, body...)
}

// readRedo parses a redo log file's full contents. Any structural
// damage — bad magic, wrong version, truncated record, checksum
// mismatch, missing or disagreeing footer, garbage body — is an error;
// the caller treats the store as unopenable rather than replaying a
// prefix silently.
func readRedo(data []byte) ([]redoRecord, error) {
	if len(data) < redoHeaderSize+redoFooterSize {
		return nil, fmt.Errorf("storage: redo log truncated: %d bytes, need at least %d", len(data), redoHeaderSize+redoFooterSize)
	}
	if [4]byte(data[:4]) != redoMagic {
		return nil, fmt.Errorf("storage: not a redo log (magic %q)", data[:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != RedoVersion {
		return nil, fmt.Errorf("storage: unsupported redo log format version %d (this build reads version %d)", v, RedoVersion)
	}
	foot := data[len(data)-redoFooterSize:]
	if [4]byte(foot[:4]) != redoEndMagic {
		return nil, fmt.Errorf("storage: redo log has no commit footer (truncated or crashed mid-append)")
	}
	if got, want := crc32.Checksum(foot[:8], crcTable), binary.LittleEndian.Uint32(foot[8:]); got != want {
		return nil, fmt.Errorf("storage: redo log footer checksum mismatch: footer says %08x, hashes to %08x", want, got)
	}
	count := binary.LittleEndian.Uint32(foot[4:8])
	var recs []redoRecord
	off := redoHeaderSize
	end := len(data) - redoFooterSize
	for off < end {
		if end-off < 8 {
			return nil, fmt.Errorf("storage: redo log truncated at offset %d: partial record header", off)
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		want := binary.LittleEndian.Uint32(data[off+4:])
		off += 8
		if n > end-off {
			return nil, fmt.Errorf("storage: redo log truncated at offset %d: record body of %d bytes exceeds file", off, n)
		}
		body := data[off : off+n]
		if got := crc32.Checksum(body, crcTable); got != want {
			return nil, fmt.Errorf("storage: redo record at offset %d checksum mismatch: record says %08x, body hashes to %08x", off, want, got)
		}
		rec, err := decodeRedoBody(body)
		if err != nil {
			return nil, fmt.Errorf("storage: redo record at offset %d: %w", off, err)
		}
		recs = append(recs, rec)
		off += n
	}
	if uint32(len(recs)) != count {
		return nil, fmt.Errorf("storage: redo log holds %d records, footer says %d", len(recs), count)
	}
	return recs, nil
}

// decodeRedoBody parses one checksum-verified record body.
func decodeRedoBody(body []byte) (redoRecord, error) {
	r := &reader{buf: body, kind: "redo record"}
	var rec redoRecord
	rec.Table = r.str("table name")
	if r.err == nil && rec.Table == "" {
		r.failf("empty table name")
	}
	nvals := r.uvarint("value count")
	if r.err == nil && nvals > uint64(r.remaining()) {
		// Each value costs at least 11 body bytes; cheap sanity bound
		// before allocating.
		r.failf("value count %d exceeds remaining body %d", nvals, r.remaining())
	}
	if r.err != nil {
		return redoRecord{}, r.err
	}
	rec.Row = make([]rel.Value, nvals)
	for i := range rec.Row {
		rec.Row[i] = r.value()
	}
	if r.err != nil {
		return redoRecord{}, r.err
	}
	if r.remaining() != 0 {
		return redoRecord{}, r.failf("%d trailing bytes after row values", r.remaining())
	}
	return rec, nil
}

// appendRedoRecord writes one record over the old footer at footOff,
// follows it with the footer for count records, and fsyncs. The footer
// write is the commit: a crash before it leaves a footer-less tail
// that readRedo rejects.
func appendRedoRecord(path string, table string, row []rel.Value, footOff int64, count uint32) (newFootOff int64, err error) {
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return 0, fmt.Errorf("storage: opening redo log: %w", err)
	}
	defer f.Close()
	rec := encodeRedoRecord(table, row)
	buf := append(rec, encodeRedoFooter(count)...)
	if _, err := f.WriteAt(buf, footOff); err != nil {
		return 0, fmt.Errorf("storage: appending redo record: %w", err)
	}
	if err := f.Sync(); err != nil {
		return 0, fmt.Errorf("storage: syncing redo log: %w", err)
	}
	return footOff + int64(len(rec)), nil
}
