package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/obs"
	"repro/internal/rel"
)

// pager is a memory-budgeted cache of decoded, validated chunk
// snapshots. Residency is accounted in on-disk framed chunk bytes (a
// stable, deterministic proxy for heap cost), and eviction is CLOCK
// (second-chance): a hit sets the entry's reference bit, the clock
// hand clears bits until it finds an unreferenced victim. A budget of
// zero or less means unlimited — nothing is ever evicted, matching the
// fully-resident behavior of earlier formats.
//
// The budget is a cache target, not a hard ceiling: a chunk currently
// being loaded is not yet evictable, so resident + in-flight bytes can
// exceed the budget by one chunk per concurrent loader (the peak field
// tracks the high-water mark so tests can pin exactly that bound).
type pager struct {
	dir    string
	budget int64
	reg    *obs.Registry

	mu       sync.Mutex
	entries  map[chunkKey]*pageEntry
	ring     []*pageEntry // clock order
	hand     int
	resident int64
	inflight int64 // bytes of chunks being loaded right now
	peak     int64 // high-water mark of resident + inflight
}

// chunkKey identifies one chunk of one table.
type chunkKey struct {
	table string
	idx   int
}

// pageEntry is one cached chunk.
type pageEntry struct {
	key  chunkKey
	snap *rel.TableSnapshot
	size int64
	ref  bool // CLOCK reference bit
}

func newPager(dir string, budget int64, reg *obs.Registry) *pager {
	return &pager{
		dir:     dir,
		budget:  budget,
		reg:     reg,
		entries: make(map[chunkKey]*pageEntry),
	}
}

// chunk returns chunk k of the table described by d, loading it
// through the verification chain (chunk CRC → bounds-checked decode →
// TableFromSnapshot structural validation) on a miss and evicting
// under the budget before admitting it.
func (p *pager) chunk(file string, d *chunkedDir, k int) (*rel.TableSnapshot, error) {
	key := chunkKey{table: d.Name, idx: k}
	ref := &d.Chunks[k]
	p.mu.Lock()
	if e, ok := p.entries[key]; ok {
		e.ref = true
		p.mu.Unlock()
		p.reg.Counter("storage.pager.hits").Inc()
		return e.snap, nil
	}
	p.inflight += ref.Size
	if hw := p.resident + p.inflight; hw > p.peak {
		p.peak = hw
	}
	p.mu.Unlock()

	snap, err := p.load(file, d, k)

	p.mu.Lock()
	p.inflight -= ref.Size
	if err != nil {
		p.mu.Unlock()
		return nil, err
	}
	if e, ok := p.entries[key]; ok {
		// Another loader admitted the same chunk while we read it;
		// serve the cached copy.
		e.ref = true
		p.mu.Unlock()
		return e.snap, nil
	}
	p.evictFor(ref.Size)
	e := &pageEntry{key: key, snap: snap, size: ref.Size, ref: true}
	p.entries[key] = e
	p.ring = append(p.ring, e)
	p.resident += e.size
	if hw := p.resident + p.inflight; hw > p.peak {
		p.peak = hw
	}
	p.reg.Gauge("storage.pager.resident_bytes").Set(float64(p.resident))
	p.mu.Unlock()
	p.reg.Counter("storage.pager.faults").Inc()
	return snap, nil
}

// load reads and validates one chunk from disk (no cache interaction).
func (p *pager) load(file string, d *chunkedDir, k int) (*rel.TableSnapshot, error) {
	ref := &d.Chunks[k]
	f, err := os.Open(filepath.Join(p.dir, file))
	if err != nil {
		return nil, fmt.Errorf("storage: reading chunk %d of %s: %w", k, d.Name, err)
	}
	defer f.Close()
	blob := make([]byte, ref.Size)
	if _, err := f.ReadAt(blob, ref.Off); err != nil {
		p.reg.Counter("storage.checksum.failures").Inc()
		return nil, fmt.Errorf("storage: reading chunk %d of %s at offset %d: %w", k, d.Name, ref.Off, err)
	}
	snap, err := d.decodeChunk(k, blob)
	if err != nil {
		p.reg.Counter("storage.checksum.failures").Inc()
		return nil, err
	}
	p.reg.Counter("storage.segment.bytes_read").Add(ref.Size)
	return snap, nil
}

// evictFor makes room for need bytes under the budget. Caller holds
// p.mu. The scan is bounded: one full sweep clears every reference
// bit, a second finds a victim, so 2·len+1 steps always suffice.
func (p *pager) evictFor(need int64) {
	if p.budget <= 0 {
		return
	}
	evictions := p.reg.Counter("storage.pager.evictions")
	for steps := 2*len(p.ring) + 1; steps > 0 && p.resident+need > p.budget && len(p.ring) > 0; steps-- {
		if p.hand >= len(p.ring) {
			p.hand = 0
		}
		e := p.ring[p.hand]
		if e.ref {
			e.ref = false
			p.hand++
			continue
		}
		p.ring = append(p.ring[:p.hand], p.ring[p.hand+1:]...)
		delete(p.entries, e.key)
		p.resident -= e.size
		evictions.Inc()
	}
}

// invalidate drops every cached chunk of a table (compaction rewrote
// its segment, so cached chunks describe a dead file).
func (p *pager) invalidate(table string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	keep := p.ring[:0]
	for _, e := range p.ring {
		if e.key.table == table {
			delete(p.entries, e.key)
			p.resident -= e.size
			continue
		}
		keep = append(keep, e)
	}
	p.ring = keep
	p.hand = 0
	p.reg.Gauge("storage.pager.resident_bytes").Set(float64(p.resident))
}

// residentBytes reports the current cache residency (for summaries).
func (p *pager) residentBytes() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.resident
}

// peakBytes reports the high-water mark of resident + in-flight bytes;
// tests pin it to budget + one chunk per concurrent loader.
func (p *pager) peakBytes() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.peak
}
