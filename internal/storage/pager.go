package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/obs"
	"repro/internal/rel"
)

// pager is a memory-budgeted cache of decoded, validated chunk
// snapshots. Residency is accounted in on-disk framed chunk bytes (a
// stable, deterministic proxy for heap cost), and eviction is CLOCK
// (second-chance): a hit sets the entry's reference bit, the clock
// hand clears bits until it finds an unreferenced victim. A budget of
// zero or less means unlimited — nothing is ever evicted, matching the
// fully-resident behavior of earlier formats.
//
// The budget is a cache target, not a hard ceiling: a chunk currently
// being loaded is not yet evictable, so resident + in-flight bytes can
// exceed the budget by one chunk per concurrent loader (the peak field
// tracks the high-water mark so tests can pin exactly that bound).
type pager struct {
	dir    string
	budget int64
	reg    *obs.Registry

	mu       sync.Mutex
	entries  map[chunkKey]*pageEntry
	ring     []*pageEntry // clock order
	hand     int
	resident int64
	inflight int64 // bytes of chunks being loaded right now
	peak     int64 // high-water mark of resident + inflight
}

// chunkKey identifies one chunk of one table. The epoch-unique segment
// file name is part of the key: compaction rewrites a table into a new
// file (t%04d.e%04d.seg), and a load of the old file that completes
// after invalidate must never be served to a post-compaction scan of
// the same table and chunk index — a stale admission lands under the
// dead file's key, where no new reader looks, and the next
// invalidate(table) sweeps it out.
type chunkKey struct {
	table string
	file  string
	idx   int
}

// pageEntry is one cached chunk.
type pageEntry struct {
	key  chunkKey
	snap *rel.TableSnapshot
	size int64
	ref  bool // CLOCK reference bit
	pins int  // active chunkPinned readers; pinned entries are not evictable
	dead bool // invalidated while pinned; dropped from the ring at the last unpin
}

func newPager(dir string, budget int64, reg *obs.Registry) *pager {
	return &pager{
		dir:     dir,
		budget:  budget,
		reg:     reg,
		entries: make(map[chunkKey]*pageEntry),
	}
}

// chunk returns chunk k of the table described by d, loading it
// through the verification chain (chunk CRC → bounds-checked decode →
// TableFromSnapshot structural validation) on a miss and evicting
// under the budget before admitting it.
func (p *pager) chunk(file string, d *chunkedDir, k int) (*rel.TableSnapshot, error) {
	snap, release, err := p.acquire(file, d, k, false)
	if err != nil {
		return nil, err
	}
	release()
	return snap, nil
}

// chunkPinned is chunk with the entry pinned against eviction until the
// returned release is called. Scans hold exactly one pin per worker, so
// the budget overshoot stays bounded to one chunk per worker even when
// every other entry is evictable.
func (p *pager) chunkPinned(file string, d *chunkedDir, k int) (*rel.TableSnapshot, func(), error) {
	return p.acquire(file, d, k, true)
}

// acquire serves one chunk, pinning its cache entry when pin is set.
// Every call increments exactly one of storage.pager.hits or
// storage.pager.faults: a fault is an admission; a load raced out by a
// concurrent admission counts as a hit plus storage.pager.dup_loads
// (the wasted read keeps bytes_read honest without double-counting
// admissions).
func (p *pager) acquire(file string, d *chunkedDir, k int, pin bool) (*rel.TableSnapshot, func(), error) {
	key := chunkKey{table: d.Name, file: file, idx: k}
	ref := &d.Chunks[k]
	p.mu.Lock()
	if e, ok := p.entries[key]; ok {
		e.ref = true
		unpin := p.pinLocked(e, pin)
		p.mu.Unlock()
		p.reg.Counter("storage.pager.hits").Inc()
		return e.snap, unpin, nil
	}
	p.inflight += ref.Size
	if hw := p.resident + p.inflight; hw > p.peak {
		p.peak = hw
	}
	p.mu.Unlock()

	snap, err := p.load(file, d, k)

	p.mu.Lock()
	p.inflight -= ref.Size
	if err != nil {
		p.mu.Unlock()
		return nil, nil, err
	}
	if e, ok := p.entries[key]; ok {
		// Another loader admitted the same chunk while we read it;
		// serve the cached copy.
		e.ref = true
		unpin := p.pinLocked(e, pin)
		p.mu.Unlock()
		p.reg.Counter("storage.pager.hits").Inc()
		p.reg.Counter("storage.pager.dup_loads").Inc()
		return e.snap, unpin, nil
	}
	p.evictFor(ref.Size)
	e := &pageEntry{key: key, snap: snap, size: ref.Size, ref: true}
	p.entries[key] = e
	p.ring = append(p.ring, e)
	p.resident += e.size
	if hw := p.resident + p.inflight; hw > p.peak {
		p.peak = hw
	}
	unpin := p.pinLocked(e, pin)
	p.reg.Gauge("storage.pager.resident_bytes").Set(float64(p.resident))
	p.mu.Unlock()
	p.reg.Counter("storage.pager.faults").Inc()
	return snap, unpin, nil
}

// pinLocked takes a pin on e (when pin is set) and returns the matching
// idempotent release. Caller holds p.mu. The last unpin of an entry
// invalidate marked dead drops it from the ring and the accounting —
// until then its bytes stay resident (the reader still holds the
// snapshot), so the gauge and peak reflect actual residency.
func (p *pager) pinLocked(e *pageEntry, pin bool) func() {
	if !pin {
		return func() {}
	}
	e.pins++
	released := false
	return func() {
		p.mu.Lock()
		defer p.mu.Unlock()
		if released {
			return
		}
		released = true
		e.pins--
		if e.dead && e.pins == 0 {
			p.dropDeadLocked(e)
		}
	}
}

// dropDeadLocked removes a dead (invalidated-while-pinned) entry from
// the ring and the residency accounting. Caller holds p.mu. The entry
// left the entries map at invalidate time — a fresh admission may own
// that key by now — so removal is by ring identity, never by key.
func (p *pager) dropDeadLocked(e *pageEntry) {
	for i, r := range p.ring {
		if r == e {
			p.ring = append(p.ring[:i], p.ring[i+1:]...)
			if i < p.hand {
				p.hand--
			}
			break
		}
	}
	p.resident -= e.size
	p.reg.Gauge("storage.pager.resident_bytes").Set(float64(p.resident))
}

// load reads and validates one chunk from disk (no cache interaction).
func (p *pager) load(file string, d *chunkedDir, k int) (*rel.TableSnapshot, error) {
	ref := &d.Chunks[k]
	f, err := os.Open(filepath.Join(p.dir, file))
	if err != nil {
		return nil, fmt.Errorf("storage: reading chunk %d of %s: %w", k, d.Name, err)
	}
	defer f.Close()
	blob := make([]byte, ref.Size)
	if _, err := f.ReadAt(blob, ref.Off); err != nil {
		p.reg.Counter("storage.checksum.failures").Inc()
		return nil, fmt.Errorf("storage: reading chunk %d of %s at offset %d: %w", k, d.Name, ref.Off, err)
	}
	snap, err := d.decodeChunk(k, blob)
	if err != nil {
		p.reg.Counter("storage.checksum.failures").Inc()
		return nil, err
	}
	p.reg.Counter("storage.segment.bytes_read").Add(ref.Size)
	return snap, nil
}

// evictFor makes room for need bytes under the budget. Caller holds
// p.mu. The scan is bounded: one full sweep clears every reference
// bit, a second finds a victim, so 2·len+1 steps always suffice (a
// ring of only pinned entries simply runs the bound out and admits
// over budget — the peak tracking records exactly that overshoot).
func (p *pager) evictFor(need int64) {
	if p.budget <= 0 {
		return
	}
	evictions := p.reg.Counter("storage.pager.evictions")
	for steps := 2*len(p.ring) + 1; steps > 0 && p.resident+need > p.budget && len(p.ring) > 0; steps-- {
		if p.hand >= len(p.ring) {
			p.hand = 0
		}
		e := p.ring[p.hand]
		if e.pins > 0 {
			p.hand++
			continue
		}
		if e.ref {
			e.ref = false
			p.hand++
			continue
		}
		p.ring = append(p.ring[:p.hand], p.ring[p.hand+1:]...)
		delete(p.entries, e.key)
		p.resident -= e.size
		evictions.Inc()
	}
}

// invalidate drops every cached chunk of a table (compaction rewrote
// its segment, so cached chunks describe a dead file). An entry a scan
// worker still holds pinned cannot leave memory yet: it is unmapped (no
// future hit can reach it) but marked dead and kept in the ring with
// its bytes accounted until the last unpin drops it, so resident_bytes
// and the peak high-water mark track actual residency. The clock hand
// is re-indexed against the surviving ring rather than reset: a reset
// would hand every surviving early-ring entry a fresh second chance
// after each compaction and skew eviction toward late-ring entries.
func (p *pager) invalidate(table string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	keep := p.ring[:0]
	hand := p.hand
	for i, e := range p.ring {
		if e.key.table == table {
			delete(p.entries, e.key)
			if e.pins > 0 {
				e.dead = true
				e.ref = false
				keep = append(keep, e)
				continue
			}
			if i < p.hand {
				hand--
			}
			p.resident -= e.size
			continue
		}
		keep = append(keep, e)
	}
	p.ring = keep
	if hand < 0 || hand > len(keep) {
		hand = 0
	}
	p.hand = hand
	p.reg.Gauge("storage.pager.resident_bytes").Set(float64(p.resident))
}

// residentBytes reports the current cache residency (for summaries).
func (p *pager) residentBytes() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.resident
}

// peakBytes reports the high-water mark of resident + in-flight bytes;
// tests pin it to budget + one chunk per concurrent loader.
func (p *pager) peakBytes() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.peak
}
