package storage

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/physical"
	"repro/internal/rel"
	"repro/internal/sqlast"
	"repro/internal/stats"
)

// scanDB builds a parent/child database big enough to span many chunks
// at 64 rows/chunk, with the value shapes that stress chunk-local
// kernels: repeated strings, NULLs, non-finite floats, and wrong-typed
// exception rows (which force the generic per-cell kernel fallback on
// the chunks containing them while other chunks keep the typed paths).
func scanDB(nrows int) *rel.Database {
	db := rel.NewDatabase()
	big := rel.NewTable("big", []rel.Column{
		{Name: rel.IDColumn, Typ: rel.TInt},
		{Name: rel.PIDColumn, Typ: rel.TInt, Nullable: true},
		{Name: "tag", Typ: rel.TString, Nullable: true, LeafID: 3},
		{Name: "val", Typ: rel.TFloat, Nullable: true, LeafID: 4},
		{Name: "n", Typ: rel.TInt, Nullable: true, LeafID: 5},
	})
	for i := 0; i < nrows; i++ {
		tag := rel.Str(fmt.Sprintf("tag-%02d", i%7))
		switch {
		case i%13 == 0:
			tag = rel.NullOf(rel.TString)
		case i%97 == 0:
			tag = rel.Int(int64(i)) // exception: int in a string column
		}
		val := rel.Float(float64(i) / 3)
		switch {
		case i%31 == 0:
			val = rel.Float(math.NaN())
		case i%47 == 0:
			val = rel.Float(math.Copysign(0, -1))
		case i%11 == 0:
			val = rel.NullOf(rel.TFloat)
		}
		n := rel.Int(int64(i % 100))
		if i%17 == 0 {
			n = rel.NullOf(rel.TInt)
		}
		big.AppendRow([]rel.Value{rel.Int(int64(i)), rel.NullOf(rel.TInt), tag, val, n})
	}
	kid := rel.NewTable("kid", []rel.Column{
		{Name: rel.IDColumn, Typ: rel.TInt},
		{Name: rel.PIDColumn, Typ: rel.TInt},
		{Name: "word", Typ: rel.TString, LeafID: 7},
	})
	kid.Parent = "big"
	for i := 0; i < nrows/2; i++ {
		kid.AppendRow([]rel.Value{
			rel.Int(int64(nrows + i)), rel.Int(int64((i * 5) % nrows)),
			rel.Str(fmt.Sprintf("w%d", i%19)),
		})
	}
	db.Add(big)
	db.Add(kid)
	return db
}

// scanQueries drive the chunk-scan path end to end: a filtered scan
// with typed int + dictionary string kernels, a scan over the
// exception-bearing float column (generic fallback), and a hash-join
// whose probe side is a driver-stage chunk scan.
func scanQueries() []*sqlast.Query {
	return []*sqlast.Query{
		{Branches: []*sqlast.Select{{
			Items: []sqlast.SelectItem{
				{Col: &sqlast.ColRef{Table: "big", Column: rel.IDColumn}, As: "ID"},
				{Col: &sqlast.ColRef{Table: "big", Column: "tag"}, As: "tag"},
			},
			From: []string{"big"},
			Where: []sqlast.Pred{
				{Kind: sqlast.PredCompare, Op: sqlast.OpEq,
					Col: sqlast.ColRef{Table: "big", Column: "tag"}, Value: rel.Str("tag-03")},
				{Kind: sqlast.PredCompare, Op: sqlast.OpGe,
					Col: sqlast.ColRef{Table: "big", Column: "n"}, Value: rel.Int(40)},
			},
		}}, OrderBy: "ID"},
		{Branches: []*sqlast.Select{{
			Items: []sqlast.SelectItem{
				{Col: &sqlast.ColRef{Table: "big", Column: rel.IDColumn}, As: "ID"},
				{Col: &sqlast.ColRef{Table: "big", Column: "val"}, As: "val"},
			},
			From: []string{"big"},
			Where: []sqlast.Pred{
				{Kind: sqlast.PredCompare, Op: sqlast.OpLt,
					Col: sqlast.ColRef{Table: "big", Column: "val"}, Value: rel.Float(25)},
			},
		}}, OrderBy: "ID"},
		{Branches: []*sqlast.Select{{
			Items: []sqlast.SelectItem{
				{Col: &sqlast.ColRef{Table: "big", Column: rel.IDColumn}, As: "ID"},
				{Col: &sqlast.ColRef{Table: "kid", Column: "word"}, As: "word"},
			},
			From: []string{"big", "kid"},
			Where: []sqlast.Pred{
				{Kind: sqlast.PredJoin,
					Left:  sqlast.ColRef{Table: "kid", Column: rel.PIDColumn},
					Right: sqlast.ColRef{Table: "big", Column: rel.IDColumn}},
				{Kind: sqlast.PredCompare, Op: sqlast.OpLt,
					Col: sqlast.ColRef{Table: "big", Column: "n"}, Value: rel.Int(50)},
			},
		}}, OrderBy: "ID"},
	}
}

// scanPlan plans a query from assembled-table statistics. Plans are
// Built-independent, so one plan executes against both the assembled
// oracle and the paged Built.
func scanPlan(t testing.TB, db *rel.Database, q *sqlast.Query) *optimizer.Plan {
	t.Helper()
	plan, err := optimizer.New(stats.FromDatabase(db)).PlanQuery(q, &physical.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// requireSameResult compares two executions bit for bit: columns, row
// order, every value under BitEqual, and the work counters.
func requireSameResult(t *testing.T, label string, got, want *engine.Result) {
	t.Helper()
	if len(got.Cols) != len(want.Cols) {
		t.Fatalf("%s: %d cols, want %d", label, len(got.Cols), len(want.Cols))
	}
	for i := range got.Cols {
		if got.Cols[i] != want.Cols[i] {
			t.Fatalf("%s: col %d = %q, want %q", label, i, got.Cols[i], want.Cols[i])
		}
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("%s: %d rows, want %d", label, len(got.Rows), len(want.Rows))
	}
	for r := range got.Rows {
		if len(got.Rows[r]) != len(want.Rows[r]) {
			t.Fatalf("%s: row %d width %d, want %d", label, r, len(got.Rows[r]), len(want.Rows[r]))
		}
		for c := range got.Rows[r] {
			if !got.Rows[r][c].BitEqual(want.Rows[r][c]) {
				t.Fatalf("%s: row %d col %d = %v, want %v", label, r, c, got.Rows[r][c], want.Rows[r][c])
			}
		}
	}
	if got.Stats != want.Stats {
		t.Fatalf("%s: stats %+v, want %+v", label, got.Stats, want.Stats)
	}
}

// savedScanStore persists scanDB under a flat design with 64-row chunks
// and returns the directory.
func savedScanStore(t *testing.T, nrows int) string {
	t.Helper()
	dir := t.TempDir()
	b, err := engine.Build(scanDB(nrows), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Save(dir, b, Options{ChunkRows: 64}); err != nil {
		t.Fatal(err)
	}
	return dir
}

// maxChunkBytes returns the largest on-disk chunk size across all
// chunked tables — the pager's admission unit, and therefore the slack
// term in the peak-residency bound.
func maxChunkBytes(t testing.TB, s *Store) int64 {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	var max int64
	for i := range s.man.Tables {
		e := &s.man.Tables[i]
		if e.ChunkRows <= 0 {
			continue
		}
		d, err := s.chunkedDirLocked(e)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range d.Chunks {
			if c.Size > max {
				max = c.Size
			}
		}
	}
	return max
}

// TestPagedBuiltMatchesAssembledUnderBudget is the PR's acceptance
// test: over a dataset at least 4x the memory budget, driver-stage
// scan queries through PagedBuilt return results bit-identical to the
// assembled oracle (and the row-at-a-time reference) at every tested
// worker count, while the pager's resident high-water mark stays
// within budget + one chunk per concurrent holder.
func TestPagedBuiltMatchesAssembledUnderBudget(t *testing.T) {
	const nrows = 4096
	dir := savedScanStore(t, nrows)

	oracleStore, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer oracleStore.Close()
	db, err := oracleStore.Database()
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := oracleStore.Built()
	if err != nil {
		t.Fatal(err)
	}

	var dataBytes int64
	for i := range oracleStore.Manifest().Tables {
		dataBytes += oracleStore.Manifest().Tables[i].Bytes
	}
	budget := dataBytes / 4
	if budget <= 0 {
		t.Fatalf("fixture too small: %d data bytes", dataBytes)
	}
	workerCounts := []int{1, 2, runtime.NumCPU()}
	maxWorkers := workerCounts[len(workerCounts)-1]

	for _, memBudget := range []int64{0, budget} {
		name := "unlimited"
		if memBudget > 0 {
			name = fmt.Sprintf("budget_%dB_data_%dB", memBudget, dataBytes)
		}
		t.Run(name, func(t *testing.T) {
			s, err := Open(dir, Options{MemBudgetBytes: memBudget, Registry: obs.NewRegistry()})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			paged, err := s.PagedBuilt()
			if err != nil {
				t.Fatal(err)
			}
			for qi, q := range scanQueries() {
				plan := scanPlan(t, db, q)
				want, err := engine.ExecuteReference(oracle, plan)
				if err != nil {
					t.Fatalf("query %d: reference: %v", qi, err)
				}
				asm, err := engine.Execute(oracle, plan)
				if err != nil {
					t.Fatalf("query %d: assembled: %v", qi, err)
				}
				requireSameResult(t, fmt.Sprintf("query %d assembled-vs-reference", qi), asm, want)

				pp, err := paged.Prepared(plan)
				if err != nil {
					t.Fatalf("query %d: prepare paged: %v", qi, err)
				}
				for _, workers := range workerCounts {
					pp.Workers = workers
					for run := 0; run < 2; run++ {
						got, err := pp.Execute()
						if err != nil {
							t.Fatalf("query %d workers %d: %v", qi, workers, err)
						}
						requireSameResult(t, fmt.Sprintf("query %d workers %d run %d", qi, workers, run), got, want)
					}
				}
				pp.Workers = 0
			}
			if memBudget > 0 {
				if dataBytes < 4*memBudget {
					t.Fatalf("dataset %dB is under 4x budget %dB; fixture lost its point", dataBytes, memBudget)
				}
				slack := int64(maxWorkers+1) * maxChunkBytes(t, s)
				if pk := s.pager.peakBytes(); pk > memBudget+slack {
					t.Fatalf("pager peak %dB exceeds budget %dB + slack %dB", pk, memBudget, slack)
				}
				if pk := s.pager.peakBytes(); pk == 0 {
					t.Fatal("pager never faulted a chunk; scans did not use the paged path")
				}
			}
		})
	}
}

// TestPagedBuiltIncludesRedoTail pins the overlay contract: rows
// appended after Save (living only in the redo log) appear in paged
// scan results exactly as they do in the assembled oracle.
func TestPagedBuiltIncludesRedoTail(t *testing.T) {
	const nrows = 640
	dir := savedScanStore(t, nrows)
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Appended rows match query 0's predicates (tag-03, n >= 40), so
	// the overlay chunk must contribute output rows, not just row count.
	for i := 0; i < 23; i++ {
		id := int64(100000 + i)
		if err := s.Append("big", []rel.Value{
			rel.Int(id), rel.NullOf(rel.TInt), rel.Str("tag-03"),
			rel.Float(float64(i)), rel.Int(90),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Append("kid", []rel.Value{
		rel.Int(200000), rel.Int(100005), rel.Str("tail-word"),
	}); err != nil {
		t.Fatal(err)
	}
	if s.RedoRows() == 0 {
		t.Fatal("appends did not land in the redo log")
	}

	db, err := s.Database()
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := s.Built()
	if err != nil {
		t.Fatal(err)
	}
	paged, err := s.PagedBuilt()
	if err != nil {
		t.Fatal(err)
	}

	cs, err := s.ChunkScan("big")
	if err != nil {
		t.Fatal(err)
	}
	if cs.RowCount() != nrows+23 {
		t.Fatalf("scan covers %d rows, want %d", cs.RowCount(), nrows+23)
	}
	lo, hi := cs.ChunkSpan(cs.NumChunks() - 1)
	if lo != nrows || hi != nrows+23 {
		t.Fatalf("overlay span [%d,%d), want [%d,%d)", lo, hi, nrows, nrows+23)
	}

	for qi, q := range scanQueries() {
		plan := scanPlan(t, db, q)
		want, err := engine.Execute(oracle, plan)
		if err != nil {
			t.Fatalf("query %d: oracle: %v", qi, err)
		}
		got, err := engine.Execute(paged, plan)
		if err != nil {
			t.Fatalf("query %d: paged: %v", qi, err)
		}
		requireSameResult(t, fmt.Sprintf("query %d with redo tail", qi), got, want)
	}

	// The tail must actually be visible in output: query 0 selects
	// tag-03 rows with n >= 40, which includes every appended big row.
	plan := scanPlan(t, db, scanQueries()[0])
	res, err := engine.Execute(paged, plan)
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for _, row := range res.Rows {
		if v := row[0]; !v.Null && v.Typ == rel.TInt && v.I >= 100000 {
			seen++
		}
	}
	if seen != 23 {
		t.Fatalf("paged scan surfaced %d appended rows, want 23", seen)
	}
}

// TestChunkScanStaleness pins the point-in-time contract: a scan fails
// — never serves stale rows — after an append to its table, after a
// compaction, and after Close.
func TestChunkScanStaleness(t *testing.T) {
	dir := savedScanStore(t, 320)
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if _, err := s.ChunkScan("nope"); err == nil {
		t.Fatal("scan of unknown table must fail")
	}

	cs, err := s.ChunkScan("big")
	if err != nil {
		t.Fatal(err)
	}
	frag, release, err := cs.Chunk(0)
	if err != nil {
		t.Fatal(err)
	}
	if lo, hi := cs.ChunkSpan(0); frag.RowCount() != hi-lo {
		t.Fatalf("chunk 0 has %d rows, span says %d", frag.RowCount(), hi-lo)
	}
	release()
	release() // idempotent

	// An append to an unrelated table must not invalidate this scan.
	if err := s.Append("kid", []rel.Value{rel.Int(9000), rel.Int(1), rel.Str("x")}); err != nil {
		t.Fatal(err)
	}
	if _, rel2, err := cs.Chunk(0); err != nil {
		t.Fatalf("append to other table staled the scan: %v", err)
	} else {
		rel2()
	}

	// An append to the scanned table makes it stale.
	if err := s.Append("big", []rel.Value{
		rel.Int(9001), rel.NullOf(rel.TInt), rel.Str("t"), rel.Float(1), rel.Int(1),
	}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cs.Chunk(0); err == nil || !strings.Contains(err.Error(), "stale") {
		t.Fatalf("chunk after append: %v, want staleness error", err)
	}

	// A fresh scan sees the new row set; compaction stales it in turn.
	cs2, err := s.ChunkScan("big")
	if err != nil {
		t.Fatal(err)
	}
	if cs2.RowCount() != 321 {
		t.Fatalf("fresh scan covers %d rows, want 321", cs2.RowCount())
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cs2.Chunk(0); err == nil || !strings.Contains(err.Error(), "stale") {
		t.Fatalf("chunk after compaction: %v, want staleness error", err)
	}

	// Post-compaction scan folds the tail into segment chunks.
	cs3, err := s.ChunkScan("big")
	if err != nil {
		t.Fatal(err)
	}
	if cs3.RowCount() != 321 || cs3.overlay != nil {
		t.Fatalf("post-compaction scan: %d rows, overlay %v; want 321 rows, no overlay",
			cs3.RowCount(), cs3.overlay != nil)
	}

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cs3.Chunk(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("chunk after close: %v, want ErrClosed", err)
	}
	if _, err := s.ChunkScan("big"); !errors.Is(err, ErrClosed) {
		t.Fatalf("scan after close: %v, want ErrClosed", err)
	}
	if _, err := s.PagedBuilt(); !errors.Is(err, ErrClosed) {
		t.Fatalf("PagedBuilt after close: %v, want ErrClosed", err)
	}
}

// TestChunkScanNeverServesPreCompactionChunk pins the cache-key epoch
// race: a chunk load that started against the pre-compaction segment
// can finish — and be admitted — after compaction swapped the manifest
// and invalidated the table. The admission lands under the dead file's
// key, so a fresh post-compaction scan of the same table and chunk
// index must fault the new epoch's chunk, never hit the stale one
// (whose row count no longer matches the new chunk span).
func TestChunkScanNeverServesPreCompactionChunk(t *testing.T) {
	dir := savedScanStore(t, 330) // 6 chunks at 64 rows; last holds 10
	reg := obs.NewRegistry()
	s, err := Open(dir, Options{Registry: reg, ChunkRows: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Capture the pre-compaction segment identity and directory — the
	// state a loader that started before the compaction works from.
	s.mu.Lock()
	oldEntry := *s.man.Table("big")
	oldDir, err := s.chunkedDirLocked(&oldEntry)
	s.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	last := len(oldDir.Chunks) - 1

	// Grow the table past the old last-chunk span, then compact. Fail
	// the compaction at the cleanup step — which runs after the manifest
	// rename committed the new epoch and the pager was invalidated — so
	// the dead segment file stays on disk for the stale loader, as in
	// the real race where its bytes were already read.
	for i := 0; i < 20; i++ {
		if err := s.Append("big", []rel.Value{
			rel.Int(int64(9000 + i)), rel.NullOf(rel.TInt), rel.Str("t"), rel.Float(1), rel.Int(1),
		}); err != nil {
			t.Fatal(err)
		}
	}
	s.killCompact = func(step string) error {
		if step == "cleanup" {
			return errors.New("keep the dead segment for the stale loader")
		}
		return nil
	}
	if err := s.Compact(); err == nil {
		t.Fatal("cleanup killpoint did not surface")
	}
	s.killCompact = nil

	// The raced loader completes now, admitting a dead-file chunk after
	// invalidate already swept the table.
	if _, err := s.pager.chunk(oldEntry.File, oldDir, last); err != nil {
		t.Fatal(err)
	}

	cs, err := s.ChunkScan("big")
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := cs.ChunkSpan(last)
	if hi-lo <= oldDir.Chunks[last].Rows {
		t.Fatalf("fixture degenerate: new last chunk %d rows, old %d — spans must differ", hi-lo, oldDir.Chunks[last].Rows)
	}
	faults := reg.Counter("storage.pager.faults").Value()
	frag, release, err := cs.Chunk(last)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	if frag.RowCount() != hi-lo {
		t.Fatalf("chunk %d served %d rows, span says %d — stale pre-compaction chunk leaked through the cache",
			last, frag.RowCount(), hi-lo)
	}
	if reg.Counter("storage.pager.faults").Value() != faults+1 {
		t.Fatal("post-compaction chunk came from the cache instead of faulting the new segment")
	}
}

// TestChunkScanRejectsWholeTableSegments pins the format gate: version-1
// whole-table segments cannot be chunk-scanned, and PagedBuilt falls
// back to assembled loading for them.
func TestChunkScanRejectsWholeTableSegments(t *testing.T) {
	dir := t.TempDir()
	b, err := engine.Build(scanDB(192), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Save(dir, b, Options{ChunkRows: -1}); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if _, err := s.ChunkScan("big"); err == nil || !strings.Contains(err.Error(), "whole-table") {
		t.Fatalf("v1 chunk scan: %v, want format error", err)
	}
	paged, err := s.PagedBuilt()
	if err != nil {
		t.Fatal(err)
	}
	if paged.ScanSource("big") != nil {
		t.Fatal("PagedBuilt registered a chunk source for a v1 segment")
	}
	db, err := s.Database()
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := s.Built()
	if err != nil {
		t.Fatal(err)
	}
	plan := scanPlan(t, db, scanQueries()[0])
	want, err := engine.Execute(oracle, plan)
	if err != nil {
		t.Fatal(err)
	}
	got, err := engine.Execute(paged, plan)
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "v1 fallback", got, want)
}
