package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/rel"
)

func bookRow(id int) []rel.Value {
	return []rel.Value{rel.Int(int64(id)), rel.NullOf(rel.TInt), rel.Str(fmt.Sprintf("b-%d", id)), rel.Float(float64(id) + 0.5)}
}

// TestGroupCommitSingleFsync: a batch of rows commits under one redo
// flush, and a reopen replays every row bit-identically.
func TestGroupCommitSingleFsync(t *testing.T) {
	dir := t.TempDir()
	if _, err := Save(dir, fixtureBuilt(t), Options{}); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	st, err := Open(dir, Options{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	var rows [][]rel.Value
	for i := 0; i < 7; i++ {
		rows = append(rows, bookRow(100+i))
	}
	if err := st.AppendBatch("book", rows); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("storage.redo.group_commits").Value(); got != 1 {
		t.Fatalf("%d redo flushes for one batch, want 1", got)
	}
	if got := reg.Counter("storage.redo.records_appended").Value(); got != 7 {
		t.Fatalf("%d records appended, want 7", got)
	}
	live, err := st.Table("book")
	if err != nil {
		t.Fatal(err)
	}
	if live.RowCount() != 12 {
		t.Fatalf("live table has %d rows, want 12", live.RowCount())
	}
	again, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := again.Table("book")
	if err != nil {
		t.Fatal(err)
	}
	tablesBitEqual(t, live, replayed)
}

// TestGroupCommitConcurrentAppends drives appenders from many
// goroutines under a commit delay so batches coalesce, then checks the
// live table and a reopen agree row for row.
func TestGroupCommitConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	if _, err := Save(dir, fixtureBuilt(t), Options{}); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	st, err := Open(dir, Options{Registry: reg, GroupCommitDelay: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// Loading the table first keeps appenders on the append path only.
	if _, err := st.Table("book"); err != nil {
		t.Fatal(err)
	}
	const writers, each = 8, 5
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := st.Append("book", bookRow(1000+w*each+i)); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	commits := reg.Counter("storage.redo.group_commits").Value()
	appended := reg.Counter("storage.redo.records_appended").Value()
	if appended != writers*each {
		t.Fatalf("%d records appended, want %d", appended, writers*each)
	}
	if commits < 1 || commits > appended {
		t.Fatalf("%d group commits for %d records", commits, appended)
	}
	live, err := st.Table("book")
	if err != nil {
		t.Fatal(err)
	}
	if live.RowCount() != 5+writers*each {
		t.Fatalf("live table has %d rows, want %d", live.RowCount(), 5+writers*each)
	}
	again, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := again.Table("book")
	if err != nil {
		t.Fatal(err)
	}
	tablesBitEqual(t, live, replayed)
}

// TestCompactFoldsRedo: an explicit Compact rewrites only dirty
// tables into the next epoch, resets the redo log, removes obsolete
// files, and reopens bit-identically with an empty tail.
func TestCompactFoldsRedo(t *testing.T) {
	dir := t.TempDir()
	if _, err := Save(dir, fixtureBuilt(t), Options{}); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	st, err := Open(dir, Options{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	// No redo yet: Compact is a no-op.
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	if st.Manifest().Epoch != 0 {
		t.Fatalf("no-op compaction advanced epoch to %d", st.Manifest().Epoch)
	}
	for i := 0; i < 3; i++ {
		if err := st.Append("book", bookRow(200+i)); err != nil {
			t.Fatal(err)
		}
	}
	live, err := st.Table("book")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	if st.RedoRows() != 0 {
		t.Fatalf("%d redo rows after compaction", st.RedoRows())
	}
	man := st.Manifest()
	if man.Epoch != 1 || man.RedoFile != "redo.e0001.log" {
		t.Fatalf("epoch %d, redo file %q after compaction", man.Epoch, man.RedoFile)
	}
	if reg.Counter("storage.compact.records_folded").Value() != 3 {
		t.Fatal("folded record count wrong")
	}
	// Dirty table rewritten into the new epoch, clean table untouched,
	// obsolete files gone.
	if man.Table("book").File != "t0000.e0001.seg" {
		t.Fatalf("book segment file %q", man.Table("book").File)
	}
	if man.Table("author").File != "t0001.seg" {
		t.Fatalf("clean table rewritten to %q", man.Table("author").File)
	}
	for _, gone := range []string{"t0000.seg", RedoName} {
		if _, err := os.Stat(filepath.Join(dir, gone)); !os.IsNotExist(err) {
			t.Fatalf("obsolete file %s survived compaction", gone)
		}
	}
	// The live store keeps serving the same rows, and so does a reopen.
	after, err := st.Table("book")
	if err != nil {
		t.Fatal(err)
	}
	tablesBitEqual(t, live, after)
	again, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := again.Table("book")
	if err != nil {
		t.Fatal(err)
	}
	tablesBitEqual(t, live, replayed)
	// Appends after compaction land in the new epoch's redo log. (live
	// is the cached table, which the append mutates — pin the expected
	// count first.)
	wantRows := live.RowCount() + 1
	if err := st.Append("book", bookRow(300)); err != nil {
		t.Fatal(err)
	}
	final, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ft, err := final.Table("book")
	if err != nil {
		t.Fatal(err)
	}
	if ft.RowCount() != wantRows {
		t.Fatalf("append after compaction lost: %d rows, want %d", ft.RowCount(), wantRows)
	}
}

// TestAutoCompactBoundsRedoTail pins the acceptance property: with a
// compaction threshold configured, the redo tail a reopen must replay
// never exceeds the threshold, and Built() rebuilds to the same
// physical-structure accounting.
func TestAutoCompactBoundsRedoTail(t *testing.T) {
	dir := t.TempDir()
	if _, err := Save(dir, fixtureBuilt(t), Options{}); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir, Options{CompactRecords: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if err := st.Append("book", bookRow(400+i)); err != nil {
			t.Fatal(err)
		}
	}
	live, err := st.Table("book")
	if err != nil {
		t.Fatal(err)
	}
	if live.RowCount() != 30 {
		t.Fatalf("live table has %d rows, want 30", live.RowCount())
	}
	liveBuilt, err := st.Built()
	if err != nil {
		t.Fatal(err)
	}
	// Close fences the store and waits out any background compaction,
	// so the directory below is quiescent.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	again, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tail := again.RedoRows(); tail > 10 {
		t.Fatalf("reopen must replay %d redo rows, threshold is 10", tail)
	}
	if again.Manifest().Epoch < 1 {
		t.Fatal("25 appends over a threshold of 10 never compacted")
	}
	replayed, err := again.Table("book")
	if err != nil {
		t.Fatal(err)
	}
	tablesBitEqual(t, live, replayed)
	reBuilt, err := again.Built()
	if err != nil {
		t.Fatal(err)
	}
	if reBuilt.StructBytes != liveBuilt.StructBytes {
		t.Fatalf("StructBytes %d after reopen, want %d", reBuilt.StructBytes, liveBuilt.StructBytes)
	}
}

// TestCloseFencesAsyncCompaction pins the shutdown race: an appender
// whose batch Close flushed calls maybeCompactAsync only after Close
// released flushMu, so the closed check (taken under s.mu, which Close
// holds when it fences) must keep that call from spawning a compaction
// that writes segment and manifest files after Close returned.
func TestCloseFencesAsyncCompaction(t *testing.T) {
	dir := t.TempDir()
	if _, err := Save(dir, fixtureBuilt(t), Options{}); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	st, err := Open(dir, Options{Registry: reg, CompactRecords: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	// Build a redo tail without tripping auto-compaction on the append
	// path, then arm the threshold so the post-Close call below is due
	// on every count except the closed fence.
	for i := 0; i < 3; i++ {
		if err := st.Append("book", bookRow(100+i)); err != nil {
			t.Fatal(err)
		}
	}
	st.opts.CompactRecords = 1
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// The racing appender's post-flush call, arriving after Close.
	st.maybeCompactAsync()
	st.compactWG.Wait()
	if got := reg.Counter("storage.compact.runs").Value(); got != 0 {
		t.Fatalf("compaction ran %d times after Close", got)
	}
	if epoch := st.Manifest().Epoch; epoch != 0 {
		t.Fatalf("manifest moved to epoch %d after Close", epoch)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), "e0001") {
			t.Fatalf("post-Close compaction wrote %s", e.Name())
		}
	}
}

// TestCompactKillpoints simulates a crash at every compaction step.
// Any step before the manifest rename must leave both the live store
// and a reopen on the old epoch with the full redo tail; a crash after
// the rename (cleanup) lands on the new epoch with an empty tail. In
// both cases the data served is bit-identical.
func TestCompactKillpoints(t *testing.T) {
	steps := []struct {
		step      string
		wantEpoch int
		wantRedo  int
	}{
		{"segment:book", 0, 4},
		{"segment:author", 0, 4},
		{"redo", 0, 4},
		{"manifest", 0, 4},
		{"cleanup", 1, 0},
	}
	for _, tc := range steps {
		t.Run(tc.step, func(t *testing.T) {
			dir := t.TempDir()
			if _, err := Save(dir, fixtureBuilt(t), Options{}); err != nil {
				t.Fatal(err)
			}
			st, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			// Dirty both tables so every per-segment killpoint is reachable.
			for i := 0; i < 3; i++ {
				if err := st.Append("book", bookRow(500+i)); err != nil {
					t.Fatal(err)
				}
			}
			if err := st.Append("author", []rel.Value{rel.Int(6), rel.Int(1), rel.Str("Knuth"), rel.Int(1938)}); err != nil {
				t.Fatal(err)
			}
			liveBook, err := st.Table("book")
			if err != nil {
				t.Fatal(err)
			}
			liveAuthor, err := st.Table("author")
			if err != nil {
				t.Fatal(err)
			}

			st.killCompact = func(step string) error {
				if step == tc.step {
					return fmt.Errorf("injected crash at %s", step)
				}
				return nil
			}
			if err := st.Compact(); err == nil {
				t.Fatalf("compaction survived injected crash at %s", tc.step)
			}
			st.killCompact = nil

			// The live store still serves the appended rows.
			for name, want := range map[string]*rel.Table{"book": liveBook, "author": liveAuthor} {
				got, err := st.Table(name)
				if err != nil {
					t.Fatalf("live store broken after crash at %s: %v", tc.step, err)
				}
				tablesBitEqual(t, want, got)
			}

			// A reopen (the "restart after crash") lands on a consistent
			// epoch — old before the rename, new after — and serves the
			// same rows either way, ignoring stray files from the
			// unfinished epoch.
			re, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("store unopenable after crash at %s: %v", tc.step, err)
			}
			if got := re.Manifest().Epoch; got != tc.wantEpoch {
				t.Fatalf("crash at %s: reopened at epoch %d, want %d", tc.step, got, tc.wantEpoch)
			}
			if got := re.RedoRows(); got != tc.wantRedo {
				t.Fatalf("crash at %s: %d redo rows on reopen, want %d", tc.step, got, tc.wantRedo)
			}
			reBook, err := re.Table("book")
			if err != nil {
				t.Fatal(err)
			}
			tablesBitEqual(t, liveBook, reBook)
			reAuthor, err := re.Table("author")
			if err != nil {
				t.Fatal(err)
			}
			tablesBitEqual(t, liveAuthor, reAuthor)

			// Recovery: a clean compaction from the reopened store works
			// and converges on epoch ≥ 1 with an empty tail.
			if err := re.Compact(); err != nil {
				t.Fatalf("recovery compaction after crash at %s: %v", tc.step, err)
			}
			if re.Manifest().Epoch < 1 || re.RedoRows() != 0 {
				t.Fatalf("crash at %s: recovery landed on epoch %d with %d redo rows",
					tc.step, re.Manifest().Epoch, re.RedoRows())
			}
			finalBook, err := re.Table("book")
			if err != nil {
				t.Fatal(err)
			}
			tablesBitEqual(t, liveBook, finalBook)
		})
	}
}

// TestStoreServesDatasetLargerThanBudget is the tentpole acceptance
// test at the store level: columnar data several times the budget
// opens, serves bit-identically, and the resident-bytes gauges stay
// within bounds (chunk cache ≤ budget; overshoot ≤ one in-flight
// chunk).
func TestStoreServesDatasetLargerThanBudget(t *testing.T) {
	dir := t.TempDir()
	src := multiChunkDB(256).Table("fact")
	db := rel.NewDatabase()
	for _, name := range []string{"fact", "dim"} {
		tb := rel.NewTable(name, src.Columns)
		for r := 0; r < src.RowCount(); r++ {
			row := make([]rel.Value, len(src.Columns))
			for c := range src.Columns {
				row[c] = src.ValueAt(r, c)
			}
			tb.AppendRow(row)
		}
		db.Add(tb)
	}
	built, err := engine.Build(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Save(dir, built, Options{ChunkRows: 64}); err != nil {
		t.Fatal(err)
	}
	// Budget: half of one table's chunked bytes — far below the two
	// tables on disk, comfortably above the largest single chunk.
	enc, err := EncodeChunkedSegment(src.Snapshot(), 64)
	if err != nil {
		t.Fatal(err)
	}
	d, err := decodeChunkedDir(enc[:chunkedDirLen(enc)])
	if err != nil {
		t.Fatal(err)
	}
	var chunkTotal, maxChunk int64
	for _, c := range d.Chunks {
		chunkTotal += c.Size
		if c.Size > maxChunk {
			maxChunk = c.Size
		}
	}
	budget := chunkTotal / 2
	if budget <= maxChunk {
		t.Fatalf("degenerate fixture: budget %d not above max chunk %d", budget, maxChunk)
	}

	reg := obs.NewRegistry()
	st, err := Open(dir, Options{Registry: reg, MemBudgetBytes: budget, ChunkRows: 64})
	if err != nil {
		t.Fatal(err)
	}
	gauge := reg.Gauge("storage.pager.resident_bytes")
	for pass := 0; pass < 2; pass++ {
		for _, name := range []string{"fact", "dim"} {
			got, err := st.Table(name)
			if err != nil {
				t.Fatal(err)
			}
			want := db.Table(name)
			tablesBitEqual(t, want, got)
			if g := int64(gauge.Value()); g > budget {
				t.Fatalf("chunk cache gauge %d exceeds budget %d", g, budget)
			}
		}
	}
	if pk := st.pager.peakBytes(); pk > budget+maxChunk {
		t.Fatalf("peak %d exceeds budget %d + one chunk %d", pk, budget, maxChunk)
	}
	if reg.Counter("storage.table.evictions").Value() == 0 {
		t.Fatal("two tables over a half-table budget never evicted the assembled-table cache")
	}
	if _, chunks := st.ResidentBytes(); chunks > budget {
		t.Fatalf("resident chunk bytes %d exceed budget %d", chunks, budget)
	}
}
