package storage

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/engine"
	"repro/internal/physical"
	"repro/internal/rel"
)

// benchDB builds a database big enough for the reopen path to have a
// measurable columnar decode cost (one wide mixed-type table).
func benchDB() *rel.Database {
	t := rel.NewTable("fact", []rel.Column{
		{Name: rel.IDColumn, Typ: rel.TInt},
		{Name: rel.PIDColumn, Typ: rel.TInt, Nullable: true},
		{Name: "k", Typ: rel.TString},
		{Name: "v", Typ: rel.TFloat, Nullable: true},
		{Name: "n", Typ: rel.TInt, Nullable: true},
	})
	row := make([]rel.Value, 5)
	for i := 0; i < 20000; i++ {
		row[0] = rel.Int(int64(i))
		row[1] = rel.NullOf(rel.TInt)
		row[2] = rel.Str(fmt.Sprintf("key-%d", i%500))
		if i%7 == 0 {
			row[3] = rel.NullOf(rel.TFloat)
		} else {
			row[3] = rel.Float(math.Sqrt(float64(i)))
		}
		row[4] = rel.Int(int64(i % 97))
		t.AppendRow(row)
	}
	db := rel.NewDatabase()
	db.Add(t)
	return db
}

// BenchmarkSegmentDecode measures the pure columnar decode + validate
// path; benchguard normalizes reopen latency against it.
func BenchmarkSegmentDecode(b *testing.B) {
	db := benchDB()
	enc := EncodeSegment(db.Table("fact").Snapshot())
	b.SetBytes(int64(len(enc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap, err := DecodeSegment(enc)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := rel.TableFromSnapshot(snap); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreReopen measures the full restart-warm path: Open plus
// loading every table (checksum, decode, validate, redo replay).
func BenchmarkStoreReopen(b *testing.B) {
	dir := b.TempDir()
	cfg := &physical.Config{
		Indexes: []*physical.Index{{Name: "ix_fact_k", Table: "fact", Key: []string{"k"}}},
	}
	built, err := engine.Build(benchDB(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := Save(dir, built, Options{}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := Open(dir, Options{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := st.Database(); err != nil {
			b.Fatal(err)
		}
	}
}
