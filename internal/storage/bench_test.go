package storage

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/engine"
	"repro/internal/optimizer"
	"repro/internal/physical"
	"repro/internal/rel"
)

// benchDB builds a database big enough for the reopen path to have a
// measurable columnar decode cost (one wide mixed-type table).
func benchDB() *rel.Database {
	t := rel.NewTable("fact", []rel.Column{
		{Name: rel.IDColumn, Typ: rel.TInt},
		{Name: rel.PIDColumn, Typ: rel.TInt, Nullable: true},
		{Name: "k", Typ: rel.TString},
		{Name: "v", Typ: rel.TFloat, Nullable: true},
		{Name: "n", Typ: rel.TInt, Nullable: true},
	})
	row := make([]rel.Value, 5)
	for i := 0; i < 20000; i++ {
		row[0] = rel.Int(int64(i))
		row[1] = rel.NullOf(rel.TInt)
		row[2] = rel.Str(fmt.Sprintf("key-%d", i%500))
		if i%7 == 0 {
			row[3] = rel.NullOf(rel.TFloat)
		} else {
			row[3] = rel.Float(math.Sqrt(float64(i)))
		}
		row[4] = rel.Int(int64(i % 97))
		t.AppendRow(row)
	}
	db := rel.NewDatabase()
	db.Add(t)
	return db
}

// BenchmarkSegmentDecode measures the pure columnar decode + validate
// path; benchguard normalizes reopen latency against it.
func BenchmarkSegmentDecode(b *testing.B) {
	db := benchDB()
	enc := EncodeSegment(db.Table("fact").Snapshot())
	b.SetBytes(int64(len(enc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap, err := DecodeSegment(enc)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := rel.TableFromSnapshot(snap); err != nil {
			b.Fatal(err)
		}
	}
}

// benchStore saves the bench database once and returns the store dir.
func benchStore(b *testing.B, saveOpts Options) string {
	b.Helper()
	dir := b.TempDir()
	cfg := &physical.Config{
		Indexes: []*physical.Index{{Name: "ix_fact_k", Table: "fact", Key: []string{"k"}}},
	}
	built, err := engine.Build(benchDB(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := Save(dir, built, saveOpts); err != nil {
		b.Fatal(err)
	}
	return dir
}

// benchReopen measures the full restart-warm path: Open plus loading
// every table (checksum, decode, validate, redo replay).
func benchReopen(b *testing.B, dir string, openOpts Options) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := Open(dir, openOpts)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := st.Database(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreReopen is the default (chunked) format with no memory
// budget: every chunk is read, verified, and merged once.
func BenchmarkStoreReopen(b *testing.B) {
	benchReopen(b, benchStore(b, Options{}), Options{})
}

// BenchmarkStoreReopenV1 pins the legacy whole-table format — the
// fully resident path earlier baselines recorded; benchguard holds it
// within noise of the PR 7 numbers.
func BenchmarkStoreReopenV1(b *testing.B) {
	benchReopen(b, benchStore(b, Options{ChunkRows: -1}), Options{ChunkRows: -1})
}

// BenchmarkStoreReopenBudgeted is the cold-chunk scan: a budget a
// quarter of the table forces the pager to fault and evict its way
// through every chunk on each reopen.
func BenchmarkStoreReopenBudgeted(b *testing.B) {
	budget := benchDB().Table("fact").Bytes() / 4
	benchReopen(b, benchStore(b, Options{}), Options{MemBudgetBytes: budget})
}

// BenchmarkScanResident is the warm counterpart: the assembled table
// is served from the store cache with no chunk traffic.
func BenchmarkScanResident(b *testing.B) {
	dir := benchStore(b, Options{})
	st, err := Open(dir, Options{})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := st.Table("fact"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Table("fact"); err != nil {
			b.Fatal(err)
		}
	}
}

func benchAppendRow(i int) []rel.Value {
	return []rel.Value{
		rel.Int(int64(1 << 30)), rel.NullOf(rel.TInt),
		rel.Str(fmt.Sprintf("key-%d", i%500)), rel.Float(float64(i)), rel.Int(int64(i % 97)),
	}
}

// BenchmarkAppendSingle is one durable row per op: each append pays a
// full redo fsync.
func BenchmarkAppendSingle(b *testing.B) {
	st, err := Open(benchStore(b, Options{}), Options{})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := st.Table("fact"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.Append("fact", benchAppendRow(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAppendBatch100 is 100 durable rows per op under one group
// commit; benchguard divides by 100 and requires the per-row cost to
// beat the single-append path.
func BenchmarkAppendBatch100(b *testing.B) {
	st, err := Open(benchStore(b, Options{}), Options{})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := st.Table("fact"); err != nil {
		b.Fatal(err)
	}
	rows := make([][]rel.Value, 100)
	for i := range rows {
		rows[i] = benchAppendRow(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.AppendBatch("fact", rows); err != nil {
			b.Fatal(err)
		}
	}
}

// benchScanStore saves the scanDB fixture once and returns its dir plus
// total data bytes from the manifest — the denominators of the
// chunk-scan residency metrics.
func benchScanStore(b *testing.B) (string, int64) {
	b.Helper()
	dir := b.TempDir()
	built, err := engine.Build(scanDB(8192), nil)
	if err != nil {
		b.Fatal(err)
	}
	man, err := Save(dir, built, Options{ChunkRows: 256})
	if err != nil {
		b.Fatal(err)
	}
	var data int64
	for i := range man.Tables {
		data += man.Tables[i].Bytes
	}
	return dir, data
}

// benchScanPlan plans the filtered-scan query from a throwaway
// assembled open, so the measured store's pager stays untouched.
func benchScanPlan(b *testing.B, dir string) *optimizer.Plan {
	b.Helper()
	oracle, err := Open(dir, Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer oracle.Close()
	db, err := oracle.Database()
	if err != nil {
		b.Fatal(err)
	}
	return scanPlan(b, db, scanQueries()[0])
}

// BenchmarkChunkScanQuery executes a driver-stage scan query through
// PagedBuilt under a budget a quarter of the data: every execution
// faults, filters, and releases chunks through the pager. Beyond
// ns/op it reports peak_over_bound — the pager's resident high-water
// mark over the contract bound (budget + one chunk per concurrent
// holder), which benchguard requires to stay at or below 1 — and
// peak_over_data, how small the scan's footprint is relative to the
// dataset.
func BenchmarkChunkScanQuery(b *testing.B) {
	dir, data := benchScanStore(b)
	plan := benchScanPlan(b, dir)
	budget := data / 4
	s, err := Open(dir, Options{MemBudgetBytes: budget})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	paged, err := s.PagedBuilt()
	if err != nil {
		b.Fatal(err)
	}
	pp, err := paged.Prepared(plan)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pp.Execute(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	bound := budget + 2*maxChunkBytes(b, s) // serial: one pin + one in-flight load
	b.ReportMetric(float64(s.pager.peakBytes())/float64(bound), "peak_over_bound")
	b.ReportMetric(float64(s.pager.peakBytes())/float64(data), "peak_over_data")
}

// BenchmarkAssembledScanQuery is the normalizer: the same plan over the
// same store through fully assembled tables. benchguard pins the
// ChunkScanQuery/AssembledScanQuery ratio so chunk faulting stays an
// acceptable constant factor over resident execution.
func BenchmarkAssembledScanQuery(b *testing.B) {
	dir, _ := benchScanStore(b)
	plan := benchScanPlan(b, dir)
	s, err := Open(dir, Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	built, err := s.Built()
	if err != nil {
		b.Fatal(err)
	}
	pp, err := built.Prepared(plan)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pp.Execute(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReopenAfterCompaction: a grown redo log folded back into
// fresh segments must reopen at segment speed, not replay speed.
func BenchmarkReopenAfterCompaction(b *testing.B) {
	dir := benchStore(b, Options{})
	st, err := Open(dir, Options{})
	if err != nil {
		b.Fatal(err)
	}
	rows := make([][]rel.Value, 500)
	for i := range rows {
		rows[i] = benchAppendRow(i)
	}
	if err := st.AppendBatch("fact", rows); err != nil {
		b.Fatal(err)
	}
	if err := st.Compact(); err != nil {
		b.Fatal(err)
	}
	benchReopen(b, dir, Options{})
}
