package storage

import (
	"fmt"
	"time"

	"repro/internal/engine"
	"repro/internal/rel"
)

// ChunkScan is a storage-backed engine.ScanSource: it serves one
// chunked table chunk by chunk through the pager, so a driver-stage
// scan faults, filters, and releases one verified chunk per worker at a
// time instead of assembling the table — peak scan memory follows
// Options.MemBudgetBytes (plus one pinned chunk per worker), not table
// size. The redo tail committed at creation time is overlaid as a
// final in-memory chunk, so the scanned row set is bit-identical to
// the assembled table: segment rows in chunk order, then replayed
// appends in commit order.
//
// A ChunkScan is a point-in-time view. Every Chunk call re-checks the
// store under its lock and fails — never serves stale rows — once the
// store has moved on: Close fences with ErrClosed, and an append to
// the table or a compaction (which rewrites the segment file) makes
// the scan stale. Chunk is safe for concurrent use by morsel workers;
// each acquired chunk is pinned against eviction until its release
// runs, which is what keeps the budget overshoot bounded to one chunk
// per worker.
type ChunkScan struct {
	s     *Store
	man   *Manifest // staleness fence: the manifest epoch at creation
	redoN int       // committed redo rows for this table at creation
	table string
	file  string
	d     *chunkedDir
	spans [][2]int
	rows  int
	// overlay is the redo tail replayed into a private in-memory table,
	// served as the final chunk; nil when the tail is empty.
	overlay *rel.Table
}

// ChunkScan returns a chunk-granular scan source for the named table,
// which must be stored in the chunked segment format. Register it on a
// Built (engine.Built.SetScanSource) to bound driver-stage scan memory;
// Store.PagedBuilt does both for every chunked table.
func (s *Store) ChunkScan(name string) (*ChunkScan, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	e := s.man.Table(name)
	if e == nil {
		return nil, fmt.Errorf("storage: no table %q in store %s", name, s.dir)
	}
	if e.ChunkRows <= 0 {
		return nil, fmt.Errorf("storage: table %q uses the whole-table segment format; chunk scans need a chunked segment", name)
	}
	d, err := s.chunkedDirLocked(e)
	if err != nil {
		return nil, err
	}
	cs := &ChunkScan{
		s:     s,
		man:   s.man,
		redoN: len(s.redo[name]),
		table: name,
		file:  e.File,
		d:     d,
	}
	lo := 0
	for _, ref := range d.Chunks {
		cs.spans = append(cs.spans, [2]int{lo, lo + ref.Rows})
		lo += ref.Rows
	}
	if tail := s.redo[name]; len(tail) > 0 {
		ov := rel.NewTable(name, d.Cols)
		ov.Parent = e.Parent
		for _, rec := range tail {
			if len(rec.Row) != len(d.Cols) {
				return nil, fmt.Errorf("storage: redo record for table %q has %d values, table has %d columns",
					name, len(rec.Row), len(d.Cols))
			}
			ov.AppendRow(rec.Row)
		}
		cs.overlay = ov
		cs.spans = append(cs.spans, [2]int{lo, lo + ov.RowCount()})
		lo += ov.RowCount()
	}
	cs.rows = lo
	return cs, nil
}

// Columns returns the table's column descriptors.
func (cs *ChunkScan) Columns() []rel.Column { return cs.d.Cols }

// RowCount returns the total rows the scan covers (segment + redo tail).
func (cs *ChunkScan) RowCount() int { return cs.rows }

// NumChunks returns the number of chunks, counting the redo-tail
// overlay as one.
func (cs *ChunkScan) NumChunks() int { return len(cs.spans) }

// ChunkSpan returns the global row range [lo, hi) chunk k covers.
func (cs *ChunkScan) ChunkSpan(k int) (int, int) { return cs.spans[k][0], cs.spans[k][1] }

// check fails once the store has moved past the scan's point in time.
func (cs *ChunkScan) check() error {
	cs.s.mu.Lock()
	defer cs.s.mu.Unlock()
	if cs.s.closed {
		return ErrClosed
	}
	if cs.s.man != cs.man || len(cs.s.redo[cs.table]) != cs.redoN {
		return fmt.Errorf("storage: chunk scan of %q is stale: the store moved on (append or compaction); create a new scan", cs.table)
	}
	return nil
}

// Chunk returns chunk k as a resident read-only fragment plus its
// release. Segment chunks go through the pager's verification chain
// (CRC → bounds-checked decode → structural validation, done once at
// fault time) and come back pinned; the adopted view skips
// re-validation (rel.ViewFromSnapshot). The overlay chunk is already
// resident and its release is a no-op.
func (cs *ChunkScan) Chunk(k int) (*rel.Table, func(), error) {
	if err := cs.check(); err != nil {
		return nil, nil, err
	}
	if cs.overlay != nil && k == len(cs.spans)-1 {
		return cs.overlay, func() {}, nil
	}
	snap, release, err := cs.s.pager.chunkPinned(cs.file, cs.d, k)
	if err != nil {
		return nil, nil, err
	}
	return rel.ViewFromSnapshot(snap), release, nil
}

// assembleEntry loads one table entry into a private assembled table —
// segment rows plus the given redo tail — bypassing the store's
// assembled-table cache. PagedBuilt's hydration loaders use it so a
// hydrated shell never aliases the cache: a later Append mutates the
// cached table, and sharing vectors with it would silently mutate a
// point-in-time view (the shell instead fails loudly at Hydrate if the
// entry no longer decodes to its declared shape).
func (s *Store) assembleEntry(e *TableEntry, tail []redoRecord) (*rel.Table, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	var t *rel.Table
	var err error
	if e.ChunkRows > 0 {
		t, err = s.loadChunkedLocked(e)
	} else {
		t, err = s.loadSegmentLocked(e)
	}
	if err != nil {
		return nil, err
	}
	if t.RowCount() != e.Rows || t.Generation() != e.Generation || t.Bytes() != e.Bytes {
		return nil, fmt.Errorf("storage: segment %s decodes to %d rows / generation %d / %d bytes, manifest says %d / %d / %d",
			e.File, t.RowCount(), t.Generation(), t.Bytes(), e.Rows, e.Generation, e.Bytes)
	}
	for _, rec := range tail {
		if len(rec.Row) != len(t.Columns) {
			return nil, fmt.Errorf("storage: redo record for table %q has %d values, table has %d columns",
				e.Name, len(rec.Row), len(t.Columns))
		}
		t.AppendRow(rec.Row)
	}
	s.reg.Counter("storage.segment.loads").Inc()
	return t, nil
}

// PagedBuilt is Built with query-time paging: every chunked table
// enters the database as a schema-only virtual shell whose driver-stage
// scans pull chunks through the pager (a registered ChunkScan source),
// so a scan query's peak resident bytes follow Options.MemBudgetBytes
// instead of table size. Accesses that genuinely need the whole table —
// index, view, and partition builds, join build sides, EXISTS probes,
// index seeks — hydrate the shell on demand through a private assembly
// of the same point-in-time row set (segment + the redo tail committed
// when PagedBuilt ran). Version-1 whole-table segments cannot be paged
// and load assembled, as in Built.
//
// The returned Built is a point-in-time view: after an append or a
// compaction, chunk scans and hydrations fail with a staleness error
// rather than serving rows the Built's generation snapshot does not
// cover — call PagedBuilt again for a fresh view. Results are
// bit-identical to Built over the same store state; Built remains the
// assembled-path oracle.
func (s *Store) PagedBuilt() (*engine.Built, error) {
	start := time.Now()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	design := s.man.Design
	db := rel.NewDatabase()
	type pagedTable struct {
		name string
		rows int
	}
	var chunked []pagedTable
	var loadErr error
	for i := range s.man.Tables {
		e := s.man.Tables[i] // copy: the loader must survive manifest swaps
		if e.ChunkRows <= 0 {
			t, err := s.tableLoadLocked(e.Name)
			if err != nil {
				loadErr = err
				break
			}
			db.Add(t)
			continue
		}
		d, err := s.chunkedDirLocked(&e)
		if err != nil {
			loadErr = err
			break
		}
		tail := s.redo[e.Name] // appends only ever extend; the slice header pins our prefix
		rows, gen, bytes := e.Rows, e.Generation, e.Bytes
		for _, rec := range tail {
			if len(rec.Row) != len(d.Cols) {
				loadErr = fmt.Errorf("storage: redo record for table %q has %d values, table has %d columns",
					e.Name, len(rec.Row), len(d.Cols))
				break
			}
			// rel.RowBytes and the per-append generation bump are
			// AppendRow's own accounting, so the shell's declared shape
			// matches what Hydrate's replay lands on exactly.
			rows++
			gen++
			bytes += rel.RowBytes(rec.Row)
		}
		if loadErr != nil {
			break
		}
		entry, tailAt := e, tail
		db.Add(rel.NewVirtualTable(e.Name, e.Parent, d.Cols, rows, gen, bytes,
			func() (*rel.Table, error) { return s.assembleEntry(&entry, tailAt) }))
		chunked = append(chunked, pagedTable{e.Name, rows})
	}
	s.mu.Unlock()
	if loadErr != nil {
		return nil, loadErr
	}
	b, err := engine.Build(db, design)
	if err != nil {
		return nil, fmt.Errorf("storage: rebuilding physical design: %w", err)
	}
	for _, pt := range chunked {
		src, err := s.ChunkScan(pt.name)
		if err != nil {
			return nil, err
		}
		// The store lock was released for engine.Build; an append that
		// slipped in would hand us a source covering more rows than the
		// shell declares. Fail with the staleness contract instead of
		// returning a Built that errors confusingly at prepare time.
		if src.RowCount() != pt.rows {
			return nil, fmt.Errorf("storage: store moved on while building paged view of %q (%d rows now, %d at snapshot); retry PagedBuilt",
				pt.name, src.RowCount(), pt.rows)
		}
		b.SetScanSource(pt.name, src)
	}
	s.reg.Gauge("storage.paged_built.ms").Set(float64(time.Since(start).Nanoseconds()) / 1e6)
	return b, nil
}
