package storage

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/physical"
)

// ManifestVersion is the manifest format version. The manifest payload
// itself is JSON (schema evolution stays cheap); the envelope pins the
// version and checksums the bytes like a segment.
const ManifestVersion = 1

var manMagic = [4]byte{'X', 'M', 'A', 'N'}

// ManifestName and RedoName are the fixed file names inside a store
// directory.
const (
	ManifestName = "MANIFEST.xman"
	RedoName     = "redo.log"
)

// TableEntry records one saved table in the manifest: where its
// segment lives and the integrity facts (size, checksum, shape) a load
// verifies before serving the data.
type TableEntry struct {
	// Name is the relation name; Parent its parent relation ("" for
	// the root).
	Name   string `json:"name"`
	Parent string `json:"parent,omitempty"`
	// File is the segment file name within the store directory
	// (always a bare name, never a path).
	File string `json:"file"`
	// Size is the segment file's full length. CRC is the CRC32-C of
	// the whole file for a version-1 segment, or of just the framed
	// directory for a chunked segment (chunk bodies carry their own
	// checksums in the directory, so lazy loads never hash the whole
	// file).
	Size int64  `json:"size"`
	CRC  uint32 `json:"crc"`
	// ChunkRows and Dir describe a chunked (format version 2) segment:
	// rows per chunk and the framed directory length. Both zero for a
	// version-1 whole-table segment.
	ChunkRows int   `json:"chunkRows,omitempty"`
	Dir       int64 `json:"dir,omitempty"`
	// Rows, Generation, and Bytes pin the decoded table's shape: a
	// segment that decodes to anything else is rejected. Generation
	// is the save-time mutation counter, so PR4's stale-Built guard
	// resumes exactly where it left off after a restart.
	Rows       int   `json:"rows"`
	Generation int64 `json:"generation"`
	Bytes      int64 `json:"bytes"`
}

// Manifest is the store's root metadata: the table list (in database
// creation order), the chosen physical design, and a rendering of the
// logical design (the mapping's SQL schema) for operators.
type Manifest struct {
	// FormatVersion is the segment format the store was written with:
	// SegmentVersion (whole-table blobs) or ChunkSegmentVersion
	// (chunked segments).
	FormatVersion int `json:"formatVersion"`
	// Epoch counts compactions: each redo-log fold writes a new
	// generation of segment files named for the epoch and bumps it.
	// The manifest rename is the atomic switch between epochs.
	Epoch int `json:"epoch,omitempty"`
	// Tables lists every saved base table in creation order.
	Tables []TableEntry `json:"tables"`
	// Design is the physical configuration (indexes, views, vertical
	// partitions) the store was built with; reopening rebuilds the
	// same structures from it.
	Design *physical.Config `json:"design"`
	// MappingSQL is the CREATE TABLE rendering of the logical design
	// the advisor chose, informational (the relational schema itself
	// is authoritative in the segments).
	MappingSQL string `json:"mappingSQL,omitempty"`
	// RedoFile is the redo log file name.
	RedoFile string `json:"redoFile"`
}

// Table returns the entry for a table name, or nil.
func (m *Manifest) Table(name string) *TableEntry {
	for i := range m.Tables {
		if m.Tables[i].Name == name {
			return &m.Tables[i]
		}
	}
	return nil
}

// encodeManifest frames the manifest JSON in the checksummed envelope.
func encodeManifest(m *Manifest) ([]byte, error) {
	payload, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("storage: encoding manifest: %w", err)
	}
	return wrapEnvelope(manMagic, ManifestVersion, payload), nil
}

// decodeManifest verifies the envelope and parses the JSON payload,
// then checks the structural invariants Open depends on.
func decodeManifest(data []byte) (*Manifest, error) {
	payload, err := openEnvelope("manifest", manMagic, ManifestVersion, data)
	if err != nil {
		return nil, err
	}
	m := &Manifest{}
	if err := json.Unmarshal(payload, m); err != nil {
		return nil, fmt.Errorf("storage: corrupt manifest: %w", err)
	}
	if m.FormatVersion != SegmentVersion && m.FormatVersion != ChunkSegmentVersion {
		return nil, fmt.Errorf("storage: manifest says segment format %d, this build reads %d and %d", m.FormatVersion, SegmentVersion, ChunkSegmentVersion)
	}
	if m.Epoch < 0 {
		return nil, fmt.Errorf("storage: corrupt manifest: negative epoch %d", m.Epoch)
	}
	seen := make(map[string]bool, len(m.Tables))
	files := make(map[string]bool, len(m.Tables))
	for i := range m.Tables {
		e := &m.Tables[i]
		if e.Name == "" {
			return nil, fmt.Errorf("storage: corrupt manifest: table %d has empty name", i)
		}
		if seen[e.Name] {
			return nil, fmt.Errorf("storage: corrupt manifest: duplicate table %q", e.Name)
		}
		seen[e.Name] = true
		if err := checkFileName(e.File); err != nil {
			return nil, fmt.Errorf("storage: corrupt manifest: table %q: %w", e.Name, err)
		}
		if files[e.File] {
			return nil, fmt.Errorf("storage: corrupt manifest: segment file %q listed twice", e.File)
		}
		files[e.File] = true
		if e.Rows < 0 || e.Size < envelopeSize || e.Bytes < 0 || e.Generation < 0 {
			return nil, fmt.Errorf("storage: corrupt manifest: table %q has impossible shape (rows %d, size %d, bytes %d, generation %d)",
				e.Name, e.Rows, e.Size, e.Bytes, e.Generation)
		}
		if e.ChunkRows < 0 || (e.ChunkRows > 0 && e.ChunkRows%64 != 0) {
			return nil, fmt.Errorf("storage: corrupt manifest: table %q chunk size %d is not a positive multiple of 64", e.Name, e.ChunkRows)
		}
		if e.ChunkRows > 0 && (e.Dir < envelopeSize || e.Dir > e.Size) {
			return nil, fmt.Errorf("storage: corrupt manifest: table %q directory length %d is impossible for a %d-byte segment", e.Name, e.Dir, e.Size)
		}
		if e.ChunkRows == 0 && e.Dir != 0 {
			return nil, fmt.Errorf("storage: corrupt manifest: table %q has a directory length %d but no chunk size", e.Name, e.Dir)
		}
	}
	if m.RedoFile != "" {
		if err := checkFileName(m.RedoFile); err != nil {
			return nil, fmt.Errorf("storage: corrupt manifest: redo log: %w", err)
		}
	}
	return m, nil
}

// checkFileName rejects manifest file references that could escape the
// store directory: only bare names are ever written, so anything else
// is corruption (or an attack on a copied-around store).
func checkFileName(name string) error {
	if name == "" {
		return fmt.Errorf("empty file name")
	}
	if strings.ContainsAny(name, "/\\") || name == "." || name == ".." {
		return fmt.Errorf("file name %q is not a bare name", name)
	}
	return nil
}
