package storage

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/physical"
	"repro/internal/rel"
)

// fixtureDB builds a two-table parent/child database exercising every
// storage shape: all three types, NULLs, duplicate strings, non-finite
// floats, and bit-faithfulness exceptions (wrong-typed appends).
func fixtureDB() *rel.Database {
	book := rel.NewTable("book", []rel.Column{
		{Name: rel.IDColumn, Typ: rel.TInt},
		{Name: rel.PIDColumn, Typ: rel.TInt, Nullable: true},
		{Name: "title", Typ: rel.TString, Nullable: true, LeafID: 3},
		{Name: "price", Typ: rel.TFloat, Nullable: true, LeafID: 4},
	})
	bookRows := [][]rel.Value{
		{rel.Int(1), rel.NullOf(rel.TInt), rel.Str("TCP/IP Illustrated"), rel.Float(65.95)},
		{rel.Int(2), rel.NullOf(rel.TInt), rel.Str("Data on the Web"), rel.Float(math.NaN())},
		{rel.Int(3), rel.NullOf(rel.TInt), rel.Str("TCP/IP Illustrated"), rel.Float(math.Copysign(0, -1))},
		{rel.Int(4), rel.NullOf(rel.TInt), rel.NullOf(rel.TString), rel.Float(math.Inf(1))},
		// Wrong-typed appends: exception-slot rows.
		{rel.Int(5), rel.NullOf(rel.TInt), rel.Int(1998), rel.Str("39.95")},
	}
	for _, r := range bookRows {
		book.AppendRow(r)
	}
	author := rel.NewTable("author", []rel.Column{
		{Name: rel.IDColumn, Typ: rel.TInt},
		{Name: rel.PIDColumn, Typ: rel.TInt},
		{Name: "last", Typ: rel.TString, LeafID: 7},
		{Name: "born", Typ: rel.TInt, Nullable: true, LeafID: 8, Occurrence: 1},
	})
	authorRows := [][]rel.Value{
		{rel.Int(1), rel.Int(1), rel.Str("Stevens"), rel.Int(1951)},
		{rel.Int(2), rel.Int(2), rel.Str("Abiteboul"), rel.NullOf(rel.TInt)},
		{rel.Int(3), rel.Int(2), rel.Str("Buneman"), rel.Int(1943)},
		{rel.Int(4), rel.Int(2), rel.Str("Suciu"), rel.Int(1959)},
		{rel.Int(5), rel.Int(3), rel.Str("Stevens"), rel.Int(1951)},
	}
	author.Parent = "book"
	for _, r := range authorRows {
		author.AppendRow(r)
	}
	db := rel.NewDatabase()
	db.Add(book)
	db.Add(author)
	return db
}

// fixtureConfig is a physical design using all three structure kinds,
// so Built() reconstruction is exercised end to end.
func fixtureConfig() *physical.Config {
	return &physical.Config{
		Indexes: []*physical.Index{
			{Name: "ix_author_last", Table: "author", Key: []string{"last"}, Include: []string{"born"}},
		},
		Views: []*physical.View{
			{Name: "v_book_author", Outer: "book", Inner: "author",
				OuterCols: []string{"title"}, InnerCols: []string{"last"}},
		},
		Partitions: []*physical.VPartition{
			{Table: "author", Groups: [][]string{{"last"}, {"born"}}},
		},
	}
}

func fixtureBuilt(t *testing.T) *engine.Built {
	t.Helper()
	b, err := engine.Build(fixtureDB(), fixtureConfig())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// tablesBitEqual compares two tables through the public API down to the
// bit level: schema, row count, generation, byte accounting, and every
// value under Value.BitEqual.
func tablesBitEqual(t *testing.T, a, b *rel.Table) {
	t.Helper()
	if a.Name != b.Name || a.Parent != b.Parent {
		t.Fatalf("identity differs: %q/%q vs %q/%q", a.Name, a.Parent, b.Name, b.Parent)
	}
	if len(a.Columns) != len(b.Columns) {
		t.Fatalf("column count %d vs %d", len(a.Columns), len(b.Columns))
	}
	for i := range a.Columns {
		if a.Columns[i] != b.Columns[i] {
			t.Fatalf("column %d differs: %+v vs %+v", i, a.Columns[i], b.Columns[i])
		}
	}
	if a.RowCount() != b.RowCount() {
		t.Fatalf("row count %d vs %d", a.RowCount(), b.RowCount())
	}
	if a.Generation() != b.Generation() {
		t.Fatalf("generation %d vs %d", a.Generation(), b.Generation())
	}
	if a.Bytes() != b.Bytes() || a.Pages() != b.Pages() {
		t.Fatalf("accounting %d bytes/%d pages vs %d/%d", a.Bytes(), a.Pages(), b.Bytes(), b.Pages())
	}
	for r := 0; r < a.RowCount(); r++ {
		for c := range a.Columns {
			if av, bv := a.ValueAt(r, c), b.ValueAt(r, c); !av.BitEqual(bv) {
				t.Fatalf("value (%d,%d): %v vs %v", r, c, av, bv)
			}
			if a.IsNullAt(r, c) != b.IsNullAt(r, c) {
				t.Fatalf("nullness (%d,%d) differs", r, c)
			}
		}
	}
}

func TestSaveOpenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	built := fixtureBuilt(t)
	man, err := Save(dir, built, Options{MappingSQL: "CREATE TABLE book (...)"})
	if err != nil {
		t.Fatal(err)
	}
	if man.FormatVersion != ChunkSegmentVersion || man.Design == nil || man.MappingSQL == "" {
		t.Fatalf("manifest incomplete: %+v", man)
	}
	if len(man.Tables) != 2 || man.Tables[0].Name != "book" || man.Tables[1].Name != "author" {
		t.Fatalf("manifest table order wrong: %+v", man.Tables)
	}
	if man.Tables[1].Parent != "book" {
		t.Fatalf("parent not recorded: %+v", man.Tables[1])
	}

	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	reopened, err := st.Built()
	if err != nil {
		t.Fatal(err)
	}
	for _, orig := range built.DB.Tables() {
		got := reopened.DB.Table(orig.Name)
		if got == nil {
			t.Fatalf("table %q missing after reopen", orig.Name)
		}
		tablesBitEqual(t, orig, got)
	}
	// The rebuilt physical structures must account to the same size —
	// indexes, views, and partitions are derived deterministically from
	// bit-identical base tables.
	if reopened.StructBytes != built.StructBytes {
		t.Fatalf("StructBytes %d after reopen, want %d", reopened.StructBytes, built.StructBytes)
	}
	if reopened.ViewTable("v_book_author") == nil {
		t.Fatal("materialized view not rebuilt")
	}
	if reopened.PartGroup("author", 1) == nil {
		t.Fatal("partition groups not rebuilt")
	}
}

func TestLazyLoadingAndMetrics(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	if _, err := Save(dir, fixtureBuilt(t), Options{Registry: reg}); err != nil {
		t.Fatal(err)
	}
	if reg.Counter("storage.save.bytes_written").Value() <= 0 {
		t.Fatal("save wrote no accounted bytes")
	}
	st, err := Open(dir, Options{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	loads := reg.Counter("storage.segment.loads")
	if loads.Value() != 0 {
		t.Fatalf("Open eagerly loaded %d segments", loads.Value())
	}
	if _, err := st.Table("book"); err != nil {
		t.Fatal(err)
	}
	if loads.Value() != 1 {
		t.Fatalf("after one Table call: %d loads, want 1", loads.Value())
	}
	// Second touch serves the cached table.
	if _, err := st.Table("book"); err != nil {
		t.Fatal(err)
	}
	if loads.Value() != 1 {
		t.Fatalf("cached table reloaded: %d loads", loads.Value())
	}
	if _, err := st.Database(); err != nil {
		t.Fatal(err)
	}
	if loads.Value() != 2 {
		t.Fatalf("after Database: %d loads, want 2", loads.Value())
	}
	if reg.Counter("storage.segment.bytes_read").Value() <= 0 {
		t.Fatal("no segment bytes accounted")
	}
	if _, err := st.Table("nope"); err == nil {
		t.Fatal("unknown table served")
	}
}

func TestRedoReplay(t *testing.T) {
	dir := t.TempDir()
	if _, err := Save(dir, fixtureBuilt(t), Options{}); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Appends cover the exception path too: a wrong-typed value must
	// survive the redo log bit-for-bit.
	appends := [][]rel.Value{
		{rel.Int(6), rel.NullOf(rel.TInt), rel.Str("New Book"), rel.Float(12.5)},
		{rel.Int(7), rel.NullOf(rel.TInt), rel.Int(-1), rel.Float(math.NaN())},
	}
	for _, row := range appends {
		if err := st.Append("book", row); err != nil {
			t.Fatal(err)
		}
	}
	live, err := st.Table("book")
	if err != nil {
		t.Fatal(err)
	}
	if live.RowCount() != 7 {
		t.Fatalf("live table has %d rows after appends, want 7", live.RowCount())
	}

	again, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := again.Table("book")
	if err != nil {
		t.Fatal(err)
	}
	tablesBitEqual(t, live, replayed)

	// Width mismatches are refused before touching the table.
	if err := st.Append("book", []rel.Value{rel.Int(99)}); err == nil {
		t.Fatal("short row accepted")
	}
	if err := st.Append("ghost", appends[0]); err == nil {
		t.Fatal("append to unknown table accepted")
	}
}

func TestManifestIsCommitPoint(t *testing.T) {
	dir := t.TempDir()
	if _, err := Save(dir, fixtureBuilt(t), Options{}); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash before the manifest rename: segments exist but
	// no manifest — the store must be unopenable.
	if err := os.Remove(filepath.Join(dir, ManifestName)); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("store without manifest opened")
	}
}

func TestOpenRejectsEscapingFileNames(t *testing.T) {
	dir := t.TempDir()
	if _, err := Save(dir, fixtureBuilt(t), Options{}); err != nil {
		t.Fatal(err)
	}
	mb, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	man, err := decodeManifest(mb)
	if err != nil {
		t.Fatal(err)
	}
	man.Tables[0].File = "../outside.seg"
	evil, err := encodeManifest(man)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, ManifestName), evil, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Open(dir, Options{})
	if err == nil || !strings.Contains(err.Error(), "not a bare name") {
		t.Fatalf("path-escaping manifest accepted: %v", err)
	}
}

func TestOpenRejectsGenerationDrift(t *testing.T) {
	dir := t.TempDir()
	if _, err := Save(dir, fixtureBuilt(t), Options{}); err != nil {
		t.Fatal(err)
	}
	mb, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	man, err := decodeManifest(mb)
	if err != nil {
		t.Fatal(err)
	}
	man.Tables[0].Generation++
	drifted, err := encodeManifest(man)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, ManifestName), drifted, 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Table(man.Tables[0].Name); err == nil {
		t.Fatal("segment disagreeing with manifest generation served")
	}
}

// TestCloseFlushesPendingBatch: an appender that joined the open
// group-commit batch but has not yet flushed (it is waiting out the
// group-commit window) must not lose its rows when the store closes —
// Close flushes the pending batch durably.
func TestCloseFlushesPendingBatch(t *testing.T) {
	dir := t.TempDir()
	if _, err := Save(dir, fixtureBuilt(t), Options{}); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	row := []rel.Value{rel.Int(6), rel.NullOf(rel.TInt), rel.Str("Closing Time"), rel.Float(9.5)}
	// The state an appender leaves mid group-commit window: records
	// joined to the open batch, nothing flushed yet.
	st.mu.Lock()
	st.gcCur = &commitBatch{recs: []redoRecord{{Table: "book", Row: row}}}
	st.mu.Unlock()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	reopened, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bt, err := reopened.Table("book")
	if err != nil {
		t.Fatal(err)
	}
	if bt.RowCount() != 6 {
		t.Fatalf("reopened book has %d rows, want 6 (pending batch lost)", bt.RowCount())
	}
	if got := bt.ValueAt(5, 2); !got.BitEqual(rel.Str("Closing Time")) {
		t.Fatalf("flushed row reads back %v", got)
	}
}

// TestPostCloseOperationsFence: every operation after Close reports
// ErrClosed instead of silently acting on a dead store.
func TestPostCloseOperationsFence(t *testing.T) {
	dir := t.TempDir()
	if _, err := Save(dir, fixtureBuilt(t), Options{}); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("second Close: %v, want nil (idempotent)", err)
	}
	row := []rel.Value{rel.Int(7), rel.NullOf(rel.TInt), rel.Str("x"), rel.Float(1)}
	checks := map[string]error{}
	_, e := st.Table("book")
	checks["Table"] = e
	_, e = st.Database()
	checks["Database"] = e
	_, e = st.Built()
	checks["Built"] = e
	checks["Append"] = st.Append("book", row)
	checks["AppendBatch"] = st.AppendBatch("book", [][]rel.Value{row})
	checks["Compact"] = st.Compact()
	for op, err := range checks {
		if !errors.Is(err, ErrClosed) {
			t.Errorf("%s after Close: %v, want ErrClosed", op, err)
		}
	}
}
