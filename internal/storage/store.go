package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/rel"
)

// ErrClosed is returned by every Store operation after Close.
var ErrClosed = errors.New("storage: store is closed")

// Options configures Save and Open.
type Options struct {
	// Registry receives storage metrics (segment loads, bytes, latency,
	// checksum failures). Nil disables metrics.
	Registry *obs.Registry
	// MappingSQL is the CREATE TABLE rendering of the logical design,
	// recorded in the manifest at Save time for operators. Ignored by
	// Open.
	MappingSQL string
	// MemBudgetBytes caps how many bytes of columnar data the store
	// keeps resident: the chunk cache and the assembled-table cache
	// each evict down to it (chunk cache by CLOCK, tables by LRU,
	// always retaining the most recently touched table). Zero or less
	// means unlimited — everything stays resident once loaded.
	MemBudgetBytes int64
	// ChunkRows is the rows-per-chunk for segments written by Save and
	// Compact. Zero means DefaultChunkRows; a negative value selects
	// the version-1 whole-table format.
	ChunkRows int
	// CompactRecords, when positive, auto-compacts the store in the
	// background once the redo log holds at least this many rows. Zero
	// means compaction only runs when Compact is called.
	CompactRecords int
	// GroupCommitDelay is how long an appender waits before flushing
	// the open commit batch, giving concurrent appenders time to join
	// the same fsync. Zero flushes immediately (still batching
	// whatever queued in the meantime).
	GroupCommitDelay time.Duration
}

// chunkRowsOrDefault resolves the ChunkRows knob.
func (o Options) chunkRowsOrDefault() int {
	if o.ChunkRows == 0 {
		return DefaultChunkRows
	}
	return o.ChunkRows
}

// Store is an opened on-disk store: the verified manifest plus lazily
// loaded table segments. Segments are read, checksum-verified, and
// structurally validated on first touch (chunk by chunk for chunked
// segments); redo records replay onto the freshly loaded table before
// it is served.
//
// Under a memory budget, tables the store has assembled may be evicted
// and reassembled on the next touch, so Table may return a different
// *rel.Table for the same name across calls; with no budget the
// returned table is shared and stable.
type Store struct {
	dir  string
	reg  *obs.Registry
	opts Options

	// flushMu serializes redo flushes and compaction. Lock order is
	// always flushMu before mu.
	flushMu sync.Mutex

	mu     sync.Mutex
	man    *Manifest
	tables map[string]*rel.Table
	mru    []string // table names, least recently used first
	dirs   map[string]*chunkedDir
	pager  *pager
	redo   map[string][]redoRecord
	// redoFootOff is the file offset of the redo log's commit footer
	// (where the next record goes); redoCount the committed row count.
	// Both advance under mu as batches commit.
	redoFootOff int64
	redoCount   uint32
	redoVersion uint32
	// gcCur is the open group-commit batch appenders join until a
	// leader detaches and flushes it.
	gcCur *commitBatch
	// closed fences every operation after Close; set once under both
	// flushMu and mu.
	closed bool

	compacting atomic.Bool
	compactWG  sync.WaitGroup
	// killCompact, when set by tests, is invoked before each compaction
	// step; returning an error simulates a crash at that point.
	killCompact func(step string) error
}

// commitBatch is one group-committed set of appends. Appenders enqueue
// under mu; the first to reach flushMu flushes everyone. flushed and
// err are written and read only under flushMu.
type commitBatch struct {
	recs    []redoRecord
	flushed bool
	err     error
}

// encodeTableFile serializes one table in the configured format and
// returns the file bytes plus the manifest entry pinning its facts.
func encodeTableFile(t *rel.Table, file string, chunkRows int) ([]byte, TableEntry, error) {
	e := TableEntry{
		Name:       t.Name,
		Parent:     t.Parent,
		File:       file,
		Rows:       t.RowCount(),
		Generation: t.Generation(),
		Bytes:      t.Bytes(),
	}
	if chunkRows < 0 {
		seg := EncodeSegment(t.Snapshot())
		e.Size = int64(len(seg))
		e.CRC = crc32.Checksum(seg, crcTable)
		return seg, e, nil
	}
	seg, err := EncodeChunkedSegment(t.Snapshot(), chunkRows)
	if err != nil {
		return nil, e, err
	}
	dirLen := int64(envelopeSize) + int64(binary.LittleEndian.Uint64(seg[8:16]))
	e.Size = int64(len(seg))
	e.CRC = crc32.Checksum(seg[:dirLen], crcTable)
	e.ChunkRows = chunkRows
	e.Dir = dirLen
	return seg, e, nil
}

// Save writes the built database's base tables, an empty redo log, and
// the manifest into dir (created if needed). The manifest is written
// last via rename: a crash mid-save leaves no readable manifest, so a
// later Open fails cleanly instead of serving a partial store.
func Save(dir string, b *engine.Built, opts Options) (*Manifest, error) {
	if b == nil || b.DB == nil {
		return nil, fmt.Errorf("storage: nothing to save (nil build)")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: creating store directory: %w", err)
	}
	written := opts.Registry.Counter("storage.save.bytes_written")
	cr := opts.chunkRowsOrDefault()
	format := ChunkSegmentVersion
	if cr < 0 {
		format = SegmentVersion
	}
	man := &Manifest{
		FormatVersion: format,
		Design:        b.Config,
		MappingSQL:    opts.MappingSQL,
		RedoFile:      RedoName,
	}
	for i, t := range b.DB.Tables() {
		seg, entry, err := encodeTableFile(t, fmt.Sprintf("t%04d.seg", i), cr)
		if err != nil {
			return nil, err
		}
		if err := writeFileSync(filepath.Join(dir, entry.File), seg); err != nil {
			return nil, err
		}
		written.Add(int64(len(seg)))
		man.Tables = append(man.Tables, entry)
	}
	redo := emptyRedoLog(RedoBatchVersion)
	if err := writeFileSync(filepath.Join(dir, RedoName), redo); err != nil {
		return nil, err
	}
	written.Add(int64(len(redo)))
	mb, err := encodeManifest(man)
	if err != nil {
		return nil, err
	}
	if err := writeFileRename(dir, ManifestName, mb); err != nil {
		return nil, err
	}
	written.Add(int64(len(mb)))
	return man, nil
}

// Open reads and verifies the manifest and the redo log. Table
// segments are not read yet — Table, Database, and Built load them on
// first touch, chunk by chunk under the memory budget for chunked
// segments.
func Open(dir string, opts Options) (*Store, error) {
	start := time.Now()
	mb, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, fmt.Errorf("storage: opening store %s: %w", dir, err)
	}
	man, err := decodeManifest(mb)
	if err != nil {
		opts.Registry.Counter("storage.checksum.failures").Inc()
		return nil, err
	}
	s := &Store{
		dir:         dir,
		man:         man,
		reg:         opts.Registry,
		opts:        opts,
		tables:      make(map[string]*rel.Table, len(man.Tables)),
		dirs:        make(map[string]*chunkedDir),
		pager:       newPager(dir, opts.MemBudgetBytes, opts.Registry),
		redo:        make(map[string][]redoRecord),
		redoVersion: RedoBatchVersion,
	}
	if man.RedoFile != "" {
		rb, err := os.ReadFile(filepath.Join(dir, man.RedoFile))
		if err != nil {
			return nil, fmt.Errorf("storage: opening redo log: %w", err)
		}
		recs, version, err := readRedo(rb)
		if err != nil {
			opts.Registry.Counter("storage.checksum.failures").Inc()
			return nil, err
		}
		for _, rec := range recs {
			if man.Table(rec.Table) == nil {
				return nil, fmt.Errorf("storage: redo log references unknown table %q", rec.Table)
			}
			s.redo[rec.Table] = append(s.redo[rec.Table], rec)
		}
		s.redoFootOff = int64(len(rb)) - redoFooterSize
		s.redoCount = uint32(len(recs))
		s.redoVersion = version
	}
	opts.Registry.Gauge("storage.open.ms").Set(float64(time.Since(start).Nanoseconds()) / 1e6)
	return s, nil
}

// Close flushes the open group-commit batch (appenders that already
// joined it get the durable result), fences every subsequent operation
// with ErrClosed, and waits for any background compaction to finish.
// Close is idempotent; the error is the pending flush's outcome.
func (s *Store) Close() error {
	s.flushMu.Lock()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.flushMu.Unlock()
		s.compactWG.Wait()
		return nil
	}
	s.closed = true
	b := s.gcCur
	s.mu.Unlock()
	var err error
	if b != nil && !b.flushed {
		s.flushBatchLocked(b)
		err = b.err
	}
	s.flushMu.Unlock()
	s.compactWG.Wait()
	return err
}

// Manifest returns the verified manifest. After a compaction the store
// serves the new epoch's manifest.
func (s *Store) Manifest() *Manifest {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.man
}

// RedoRows returns the number of committed redo rows awaiting
// compaction — the replay cost the next Open pays.
func (s *Store) RedoRows() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int(s.redoCount)
}

// ResidentBytes reports the bytes of columnar data currently resident:
// assembled tables plus the chunk cache.
func (s *Store) ResidentBytes() (tables, chunks int64) {
	s.mu.Lock()
	for _, t := range s.tables {
		tables += t.Bytes()
	}
	s.mu.Unlock()
	return tables, s.pager.residentBytes()
}

// Table returns the named table, loading and verifying its segment on
// first touch and replaying any redo records onto it.
func (s *Store) Table(name string) (*rel.Table, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tableLocked(name)
}

func (s *Store) tableLocked(name string) (*rel.Table, error) {
	if s.closed {
		return nil, ErrClosed
	}
	return s.tableLoadLocked(name)
}

// tableLoadLocked is tableLocked without the Close fence, for internal
// callers that legitimately run during shutdown (the background
// compaction Close waits out).
func (s *Store) tableLoadLocked(name string) (*rel.Table, error) {
	if t, ok := s.tables[name]; ok {
		s.touchLocked(name)
		return t, nil
	}
	e := s.man.Table(name)
	if e == nil {
		return nil, fmt.Errorf("storage: no table %q in store %s", name, s.dir)
	}
	start := time.Now()
	var t *rel.Table
	var err error
	if e.ChunkRows > 0 {
		t, err = s.loadChunkedLocked(e)
	} else {
		t, err = s.loadSegmentLocked(e)
	}
	if err != nil {
		return nil, err
	}
	if t.RowCount() != e.Rows || t.Generation() != e.Generation || t.Bytes() != e.Bytes {
		return nil, fmt.Errorf("storage: segment %s decodes to %d rows / generation %d / %d bytes, manifest says %d / %d / %d",
			e.File, t.RowCount(), t.Generation(), t.Bytes(), e.Rows, e.Generation, e.Bytes)
	}
	for _, rec := range s.redo[name] {
		if len(rec.Row) != len(t.Columns) {
			return nil, fmt.Errorf("storage: redo record for table %q has %d values, table has %d columns", name, len(rec.Row), len(t.Columns))
		}
		t.AppendRow(rec.Row)
	}
	s.tables[name] = t
	s.touchLocked(name)
	s.evictTablesLocked()
	s.reg.Counter("storage.segment.loads").Inc()
	s.reg.Counter("storage.segment.load_ns").Add(time.Since(start).Nanoseconds())
	return t, nil
}

// loadSegmentLocked loads a version-1 whole-table segment through the
// verification chain: size, CRC, bounds-checked decode, structural
// validation.
func (s *Store) loadSegmentLocked(e *TableEntry) (*rel.Table, error) {
	data, err := os.ReadFile(filepath.Join(s.dir, e.File))
	if err != nil {
		return nil, fmt.Errorf("storage: reading segment for table %q: %w", e.Name, err)
	}
	if int64(len(data)) != e.Size {
		s.reg.Counter("storage.checksum.failures").Inc()
		return nil, fmt.Errorf("storage: segment %s is %d bytes, manifest says %d", e.File, len(data), e.Size)
	}
	if got := crc32.Checksum(data, crcTable); got != e.CRC {
		s.reg.Counter("storage.checksum.failures").Inc()
		return nil, fmt.Errorf("storage: segment %s checksum mismatch: manifest says %08x, file hashes to %08x", e.File, e.CRC, got)
	}
	snap, err := DecodeSegment(data)
	if err != nil {
		s.reg.Counter("storage.checksum.failures").Inc()
		return nil, err
	}
	if snap.Name != e.Name {
		return nil, fmt.Errorf("storage: segment %s holds table %q, manifest says %q", e.File, snap.Name, e.Name)
	}
	t, err := rel.TableFromSnapshot(snap)
	if err != nil {
		return nil, fmt.Errorf("storage: segment %s: %w", e.File, err)
	}
	s.reg.Counter("storage.segment.bytes_read").Add(int64(len(data)))
	return t, nil
}

// loadChunkedLocked assembles a table from its chunked segment: the
// directory is read and verified once (then cached), each chunk loads
// through the pager's verification chain under the memory budget, and
// the merged snapshot passes full structural validation.
func (s *Store) loadChunkedLocked(e *TableEntry) (*rel.Table, error) {
	d, err := s.chunkedDirLocked(e)
	if err != nil {
		return nil, err
	}
	parts := make([]*rel.TableSnapshot, len(d.Chunks))
	for k := range d.Chunks {
		parts[k], err = s.pager.chunk(e.File, d, k)
		if err != nil {
			return nil, err
		}
	}
	merged, err := d.mergeChunks(parts)
	if err != nil {
		s.reg.Counter("storage.checksum.failures").Inc()
		return nil, err
	}
	t, err := rel.TableFromSnapshot(merged)
	if err != nil {
		return nil, fmt.Errorf("storage: segment %s: %w", e.File, err)
	}
	return t, nil
}

// chunkedDirLocked returns the verified directory of a chunked
// segment, reading only the directory region of the file.
func (s *Store) chunkedDirLocked(e *TableEntry) (*chunkedDir, error) {
	if d, ok := s.dirs[e.Name]; ok {
		return d, nil
	}
	f, err := os.Open(filepath.Join(s.dir, e.File))
	if err != nil {
		return nil, fmt.Errorf("storage: reading segment for table %q: %w", e.Name, err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("storage: reading segment for table %q: %w", e.Name, err)
	}
	if st.Size() != e.Size {
		s.reg.Counter("storage.checksum.failures").Inc()
		return nil, fmt.Errorf("storage: segment %s is %d bytes, manifest says %d", e.File, st.Size(), e.Size)
	}
	hdr := make([]byte, e.Dir)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		s.reg.Counter("storage.checksum.failures").Inc()
		return nil, fmt.Errorf("storage: reading segment directory of %s: %w", e.File, err)
	}
	if got := crc32.Checksum(hdr, crcTable); got != e.CRC {
		s.reg.Counter("storage.checksum.failures").Inc()
		return nil, fmt.Errorf("storage: segment %s directory checksum mismatch: manifest says %08x, file hashes to %08x", e.File, e.CRC, got)
	}
	d, err := decodeChunkedDir(hdr)
	if err != nil {
		s.reg.Counter("storage.checksum.failures").Inc()
		return nil, err
	}
	if d.Name != e.Name {
		return nil, fmt.Errorf("storage: segment %s holds table %q, manifest says %q", e.File, d.Name, e.Name)
	}
	if d.ChunkRows != e.ChunkRows || d.DirLen != e.Dir || d.fileSize() != e.Size {
		return nil, fmt.Errorf("storage: segment %s directory (chunk size %d, directory %d, file %d bytes) disagrees with manifest (%d, %d, %d)",
			e.File, d.ChunkRows, d.DirLen, d.fileSize(), e.ChunkRows, e.Dir, e.Size)
	}
	s.reg.Counter("storage.segment.bytes_read").Add(int64(len(hdr)))
	s.dirs[e.Name] = d
	return d, nil
}

// touchLocked marks a table most recently used.
func (s *Store) touchLocked(name string) {
	for i, n := range s.mru {
		if n == name {
			s.mru = append(append(s.mru[:i], s.mru[i+1:]...), name)
			return
		}
	}
	s.mru = append(s.mru, name)
}

// evictTablesLocked drops least-recently-used assembled tables until
// their total bytes fit the budget, always retaining the most recently
// touched one. Evicted tables reassemble through the chunk cache (and
// re-replay their redo tail) on the next touch.
func (s *Store) evictTablesLocked() {
	var total int64
	for _, t := range s.tables {
		total += t.Bytes()
	}
	if s.opts.MemBudgetBytes > 0 {
		evictions := s.reg.Counter("storage.table.evictions")
		for total > s.opts.MemBudgetBytes && len(s.mru) > 1 {
			victim := s.mru[0]
			s.mru = s.mru[1:]
			if t, ok := s.tables[victim]; ok {
				total -= t.Bytes()
				delete(s.tables, victim)
				evictions.Inc()
			}
		}
	}
	s.reg.Gauge("storage.resident.table_bytes").Set(float64(total))
}

// Database loads every table in manifest order and returns them as a
// database.
func (s *Store) Database() (*rel.Database, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	db := rel.NewDatabase()
	for i := range s.man.Tables {
		t, err := s.tableLocked(s.man.Tables[i].Name)
		if err != nil {
			return nil, err
		}
		db.Add(t)
	}
	return db, nil
}

// Built loads the full database and rebuilds the physical design the
// store was saved with — indexes, materialized views, and vertical
// partitions are reconstructed from the base tables, restoring warm
// serving after a restart.
func (s *Store) Built() (*engine.Built, error) {
	start := time.Now()
	db, err := s.Database()
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	design := s.man.Design
	s.mu.Unlock()
	b, err := engine.Build(db, design)
	if err != nil {
		return nil, fmt.Errorf("storage: rebuilding physical design: %w", err)
	}
	s.reg.Gauge("storage.built.ms").Set(float64(time.Since(start).Nanoseconds()) / 1e6)
	return b, nil
}

// Append durably logs one row append and applies it to the (loaded)
// table, so a later Open of the same directory replays it and lands on
// the same row count and generation. Concurrent appenders share one
// fsync (group commit).
func (s *Store) Append(table string, row []rel.Value) error {
	return s.AppendBatch(table, [][]rel.Value{row})
}

// AppendBatch durably logs a batch of row appends under a single fsync
// and applies them to the (loaded) table. Batches from concurrent
// appenders that queue while a flush is in progress coalesce into the
// next fsync.
func (s *Store) AppendBatch(table string, rows [][]rel.Value) error {
	if len(rows) == 0 {
		return nil
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if s.man.RedoFile == "" {
		s.mu.Unlock()
		return fmt.Errorf("storage: store has no redo log")
	}
	t, err := s.tableLocked(table)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	for _, row := range rows {
		if len(row) != len(t.Columns) {
			s.mu.Unlock()
			return fmt.Errorf("storage: append to %q has %d values, table has %d columns", table, len(row), len(t.Columns))
		}
	}
	if s.gcCur == nil {
		s.gcCur = &commitBatch{}
	}
	b := s.gcCur
	for _, row := range rows {
		b.recs = append(b.recs, redoRecord{Table: table, Row: append([]rel.Value(nil), row...)})
	}
	s.mu.Unlock()

	if d := s.opts.GroupCommitDelay; d > 0 {
		time.Sleep(d)
	}

	s.flushMu.Lock()
	if !b.flushed {
		s.flushBatchLocked(b)
	}
	err = b.err
	s.flushMu.Unlock()

	s.maybeCompactAsync()
	return err
}

// flushBatchLocked detaches and durably writes the open commit batch.
// Caller holds flushMu; b is the batch the caller joined, which is
// still the open batch (batches are only flushed under flushMu).
func (s *Store) flushBatchLocked(b *commitBatch) {
	s.mu.Lock()
	if s.gcCur == b {
		s.gcCur = nil
	}
	footOff, count, version := s.redoFootOff, s.redoCount, s.redoVersion
	path := filepath.Join(s.dir, s.man.RedoFile)
	s.mu.Unlock()

	nrows := uint32(len(b.recs))
	newFoot, err := appendRedoBatch(path, version, b.recs, footOff, count+nrows)
	b.flushed = true
	b.err = err
	if err != nil {
		return
	}
	s.reg.Counter("storage.redo.group_commits").Inc()
	s.reg.Counter("storage.redo.records_appended").Add(int64(nrows))

	s.mu.Lock()
	s.redoFootOff = newFoot
	s.redoCount += nrows
	for i := range b.recs {
		rec := &b.recs[i]
		if t, ok := s.tables[rec.Table]; ok {
			t.AppendRow(rec.Row)
		}
		s.redo[rec.Table] = append(s.redo[rec.Table], *rec)
	}
	s.mu.Unlock()
}

// maybeCompactAsync starts a background compaction when the redo log
// has crossed the configured threshold and none is running. The closed
// check and the WaitGroup.Add happen atomically under s.mu: Close sets
// closed under s.mu before it calls compactWG.Wait, so an appender
// whose batch Close flushed can never spawn a compaction after Close
// returned (and every Add is ordered before the Wait it must gate).
func (s *Store) maybeCompactAsync() {
	if s.opts.CompactRecords <= 0 {
		return
	}
	s.mu.Lock()
	due := int(s.redoCount) >= s.opts.CompactRecords && !s.closed
	if !due || !s.compacting.CompareAndSwap(false, true) {
		s.mu.Unlock()
		return
	}
	s.compactWG.Add(1)
	s.mu.Unlock()
	go func() {
		defer s.compactWG.Done()
		defer s.compacting.Store(false)
		if err := s.compactNoFence(); err != nil {
			s.reg.Counter("storage.compact.failures").Inc()
		}
	}()
}

// Compact folds the redo log back into fresh segments: every table
// with a redo tail is rewritten (with its replayed rows) into a new
// epoch's segment file, a fresh empty redo log is written, and the new
// manifest is published via temp-file+rename — the atomic switch-over.
// A crash anywhere before the rename leaves the old manifest pointing
// at the old files, so the store reopens at the old generation; a
// crash after it reopens at the new one with a bounded (empty) redo
// tail. Stray files from an unfinished epoch are ignored by Open,
// which only reads what the manifest lists.
func (s *Store) Compact() error {
	s.flushMu.Lock()
	defer s.flushMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.compactLocked()
}

// compactNoFence runs a compaction that is allowed to complete during
// shutdown: a background compaction triggered before Close keeps the
// bounded-redo-tail promise even when Close races it to flushMu.
func (s *Store) compactNoFence() error {
	s.flushMu.Lock()
	defer s.flushMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactLocked()
}

// compactLocked is the body of Compact. Caller holds flushMu and mu.
func (s *Store) compactLocked() error {
	start := time.Now()
	if s.man.RedoFile == "" {
		return fmt.Errorf("storage: store has no redo log")
	}
	if s.redoCount == 0 {
		return nil
	}
	step := func(name string) error {
		if s.killCompact != nil {
			return s.killCompact(name)
		}
		return nil
	}
	epoch := s.man.Epoch + 1
	cr := s.opts.chunkRowsOrDefault()
	format := ChunkSegmentVersion
	if cr < 0 {
		format = SegmentVersion
	}
	newMan := &Manifest{
		FormatVersion: format,
		Epoch:         epoch,
		Design:        s.man.Design,
		MappingSQL:    s.man.MappingSQL,
		RedoFile:      fmt.Sprintf("redo.e%04d.log", epoch),
	}
	written := s.reg.Counter("storage.save.bytes_written")
	var obsolete, rewritten []string
	for i := range s.man.Tables {
		e := s.man.Tables[i]
		if len(s.redo[e.Name]) == 0 {
			newMan.Tables = append(newMan.Tables, e)
			continue
		}
		if err := step("segment:" + e.Name); err != nil {
			return err
		}
		t, err := s.tableLoadLocked(e.Name)
		if err != nil {
			return err
		}
		seg, entry, err := encodeTableFile(t, fmt.Sprintf("t%04d.e%04d.seg", i, epoch), cr)
		if err != nil {
			return err
		}
		if err := writeFileSync(filepath.Join(s.dir, entry.File), seg); err != nil {
			return err
		}
		written.Add(int64(len(seg)))
		obsolete = append(obsolete, e.File)
		rewritten = append(rewritten, e.Name)
		newMan.Tables = append(newMan.Tables, entry)
	}
	if err := step("redo"); err != nil {
		return err
	}
	redo := emptyRedoLog(RedoBatchVersion)
	if err := writeFileSync(filepath.Join(s.dir, newMan.RedoFile), redo); err != nil {
		return err
	}
	written.Add(int64(len(redo)))
	if err := step("manifest"); err != nil {
		return err
	}
	mb, err := encodeManifest(newMan)
	if err != nil {
		return err
	}
	if err := writeFileRename(s.dir, ManifestName, mb); err != nil {
		return err
	}
	written.Add(int64(len(mb)))

	// The rename committed the new epoch; bring the in-memory state to
	// it before anything can fail, so a live store never straddles
	// epochs.
	obsolete = append(obsolete, s.man.RedoFile)
	folded := s.redoCount
	s.man = newMan
	s.redo = make(map[string][]redoRecord)
	s.redoCount = 0
	s.redoFootOff = redoHeaderSize
	s.redoVersion = RedoBatchVersion
	for _, name := range rewritten {
		delete(s.dirs, name)
		s.pager.invalidate(name)
	}
	s.reg.Counter("storage.compact.runs").Inc()
	s.reg.Counter("storage.compact.records_folded").Add(int64(folded))
	s.reg.Gauge("storage.compact.ms").Set(float64(time.Since(start).Nanoseconds()) / 1e6)

	// Old-epoch files are garbage now; removal is best-effort (a crash
	// that leaves them behind costs disk, not correctness).
	if err := step("cleanup"); err != nil {
		return err
	}
	for _, f := range obsolete {
		os.Remove(filepath.Join(s.dir, f))
	}
	return nil
}

// writeFileSync writes a file and fsyncs it before close.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("storage: creating %s: %w", path, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("storage: writing %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("storage: syncing %s: %w", path, err)
	}
	return f.Close()
}

// writeFileRename writes data to a temp file in dir, syncs it, and
// renames it over name — the atomic-publish step that makes the
// manifest the commit point of Save and Compact.
func writeFileRename(dir, name string, data []byte) error {
	tmp, err := os.CreateTemp(dir, name+".tmp*")
	if err != nil {
		return fmt.Errorf("storage: creating temp manifest: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("storage: writing temp manifest: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("storage: syncing temp manifest: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("storage: closing temp manifest: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, name)); err != nil {
		return fmt.Errorf("storage: publishing manifest: %w", err)
	}
	return nil
}
