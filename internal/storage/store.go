package storage

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/rel"
)

// Options configures Save and Open.
type Options struct {
	// Registry receives storage metrics (segment loads, bytes, latency,
	// checksum failures). Nil disables metrics.
	Registry *obs.Registry
	// MappingSQL is the CREATE TABLE rendering of the logical design,
	// recorded in the manifest at Save time for operators. Ignored by
	// Open.
	MappingSQL string
}

// Store is an opened on-disk store: the verified manifest plus lazily
// loaded table segments. Segments are read, checksum-verified, and
// structurally validated on first touch; redo records replay onto the
// freshly loaded table before it is served.
type Store struct {
	dir string
	man *Manifest
	reg *obs.Registry

	mu     sync.Mutex
	tables map[string]*rel.Table
	redo   map[string][]redoRecord
	// redoFootOff is the file offset of the redo log's commit footer
	// (where the next record goes); redoCount the committed record
	// count. Both advance under mu as Append commits.
	redoFootOff int64
	redoCount   uint32
}

// Save writes the built database's base tables, an empty redo log, and
// the manifest into dir (created if needed). The manifest is written
// last via rename: a crash mid-save leaves no readable manifest, so a
// later Open fails cleanly instead of serving a partial store.
func Save(dir string, b *engine.Built, opts Options) (*Manifest, error) {
	if b == nil || b.DB == nil {
		return nil, fmt.Errorf("storage: nothing to save (nil build)")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: creating store directory: %w", err)
	}
	written := opts.Registry.Counter("storage.save.bytes_written")
	man := &Manifest{
		FormatVersion: SegmentVersion,
		Design:        b.Config,
		MappingSQL:    opts.MappingSQL,
		RedoFile:      RedoName,
	}
	for i, t := range b.DB.Tables() {
		seg := EncodeSegment(t.Snapshot())
		name := fmt.Sprintf("t%04d.seg", i)
		if err := writeFileSync(filepath.Join(dir, name), seg); err != nil {
			return nil, err
		}
		written.Add(int64(len(seg)))
		man.Tables = append(man.Tables, TableEntry{
			Name:       t.Name,
			Parent:     t.Parent,
			File:       name,
			Size:       int64(len(seg)),
			CRC:        crc32.Checksum(seg, crcTable),
			Rows:       t.RowCount(),
			Generation: t.Generation(),
			Bytes:      t.Bytes(),
		})
	}
	redo := emptyRedoLog()
	if err := writeFileSync(filepath.Join(dir, RedoName), redo); err != nil {
		return nil, err
	}
	written.Add(int64(len(redo)))
	mb, err := encodeManifest(man)
	if err != nil {
		return nil, err
	}
	if err := writeFileRename(dir, ManifestName, mb); err != nil {
		return nil, err
	}
	written.Add(int64(len(mb)))
	return man, nil
}

// Open reads and verifies the manifest and the redo log. Table
// segments are not read yet — Table, Database, and Built load them on
// first touch.
func Open(dir string, opts Options) (*Store, error) {
	start := time.Now()
	mb, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, fmt.Errorf("storage: opening store %s: %w", dir, err)
	}
	man, err := decodeManifest(mb)
	if err != nil {
		opts.Registry.Counter("storage.checksum.failures").Inc()
		return nil, err
	}
	s := &Store{
		dir:    dir,
		man:    man,
		reg:    opts.Registry,
		tables: make(map[string]*rel.Table, len(man.Tables)),
		redo:   make(map[string][]redoRecord),
	}
	if man.RedoFile != "" {
		rb, err := os.ReadFile(filepath.Join(dir, man.RedoFile))
		if err != nil {
			return nil, fmt.Errorf("storage: opening redo log: %w", err)
		}
		recs, err := readRedo(rb)
		if err != nil {
			opts.Registry.Counter("storage.checksum.failures").Inc()
			return nil, err
		}
		for _, rec := range recs {
			if man.Table(rec.Table) == nil {
				return nil, fmt.Errorf("storage: redo log references unknown table %q", rec.Table)
			}
			s.redo[rec.Table] = append(s.redo[rec.Table], rec)
		}
		s.redoFootOff = int64(len(rb)) - redoFooterSize
		s.redoCount = uint32(len(recs))
	}
	opts.Registry.Gauge("storage.open.ms").Set(float64(time.Since(start).Nanoseconds()) / 1e6)
	return s, nil
}

// Manifest returns the verified manifest.
func (s *Store) Manifest() *Manifest { return s.man }

// Table returns the named table, loading and verifying its segment on
// first touch and replaying any redo records onto it. The returned
// table is shared: every caller sees the same *rel.Table.
func (s *Store) Table(name string) (*rel.Table, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tableLocked(name)
}

func (s *Store) tableLocked(name string) (*rel.Table, error) {
	if t, ok := s.tables[name]; ok {
		return t, nil
	}
	e := s.man.Table(name)
	if e == nil {
		return nil, fmt.Errorf("storage: no table %q in store %s", name, s.dir)
	}
	start := time.Now()
	data, err := os.ReadFile(filepath.Join(s.dir, e.File))
	if err != nil {
		return nil, fmt.Errorf("storage: reading segment for table %q: %w", name, err)
	}
	if int64(len(data)) != e.Size {
		s.reg.Counter("storage.checksum.failures").Inc()
		return nil, fmt.Errorf("storage: segment %s is %d bytes, manifest says %d", e.File, len(data), e.Size)
	}
	if got := crc32.Checksum(data, crcTable); got != e.CRC {
		s.reg.Counter("storage.checksum.failures").Inc()
		return nil, fmt.Errorf("storage: segment %s checksum mismatch: manifest says %08x, file hashes to %08x", e.File, e.CRC, got)
	}
	snap, err := DecodeSegment(data)
	if err != nil {
		s.reg.Counter("storage.checksum.failures").Inc()
		return nil, err
	}
	if snap.Name != e.Name {
		return nil, fmt.Errorf("storage: segment %s holds table %q, manifest says %q", e.File, snap.Name, e.Name)
	}
	t, err := rel.TableFromSnapshot(snap)
	if err != nil {
		return nil, fmt.Errorf("storage: segment %s: %w", e.File, err)
	}
	if t.RowCount() != e.Rows || t.Generation() != e.Generation || t.Bytes() != e.Bytes {
		return nil, fmt.Errorf("storage: segment %s decodes to %d rows / generation %d / %d bytes, manifest says %d / %d / %d",
			e.File, t.RowCount(), t.Generation(), t.Bytes(), e.Rows, e.Generation, e.Bytes)
	}
	for _, rec := range s.redo[name] {
		if len(rec.Row) != len(t.Columns) {
			return nil, fmt.Errorf("storage: redo record for table %q has %d values, table has %d columns", name, len(rec.Row), len(t.Columns))
		}
		t.AppendRow(rec.Row)
	}
	s.tables[name] = t
	s.reg.Counter("storage.segment.loads").Inc()
	s.reg.Counter("storage.segment.load_ns").Add(time.Since(start).Nanoseconds())
	s.reg.Counter("storage.segment.bytes_read").Add(int64(len(data)))
	return t, nil
}

// Database loads every table in manifest order and returns them as a
// database.
func (s *Store) Database() (*rel.Database, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	db := rel.NewDatabase()
	for i := range s.man.Tables {
		t, err := s.tableLocked(s.man.Tables[i].Name)
		if err != nil {
			return nil, err
		}
		db.Add(t)
	}
	return db, nil
}

// Built loads the full database and rebuilds the physical design the
// store was saved with — indexes, materialized views, and vertical
// partitions are reconstructed from the base tables, restoring warm
// serving after a restart.
func (s *Store) Built() (*engine.Built, error) {
	start := time.Now()
	db, err := s.Database()
	if err != nil {
		return nil, err
	}
	b, err := engine.Build(db, s.man.Design)
	if err != nil {
		return nil, fmt.Errorf("storage: rebuilding physical design: %w", err)
	}
	s.reg.Gauge("storage.built.ms").Set(float64(time.Since(start).Nanoseconds()) / 1e6)
	return b, nil
}

// Append durably logs one row append and applies it to the (loaded)
// table, so a later Open of the same directory replays it and lands on
// the same row count and generation.
func (s *Store) Append(table string, row []rel.Value) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.man.RedoFile == "" {
		return fmt.Errorf("storage: store has no redo log")
	}
	t, err := s.tableLocked(table)
	if err != nil {
		return err
	}
	if len(row) != len(t.Columns) {
		return fmt.Errorf("storage: append to %q has %d values, table has %d columns", table, len(row), len(t.Columns))
	}
	foot, err := appendRedoRecord(filepath.Join(s.dir, s.man.RedoFile), table, row, s.redoFootOff, s.redoCount+1)
	if err != nil {
		return err
	}
	s.redoFootOff = foot
	s.redoCount++
	t.AppendRow(row)
	s.redo[table] = append(s.redo[table], redoRecord{Table: table, Row: append([]rel.Value(nil), row...)})
	return nil
}

// writeFileSync writes a file and fsyncs it before close.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("storage: creating %s: %w", path, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("storage: writing %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("storage: syncing %s: %w", path, err)
	}
	return f.Close()
}

// writeFileRename writes data to a temp file in dir, syncs it, and
// renames it over name — the atomic-publish step that makes the
// manifest the commit point of Save.
func writeFileRename(dir, name string, data []byte) error {
	tmp, err := os.CreateTemp(dir, name+".tmp*")
	if err != nil {
		return fmt.Errorf("storage: creating temp manifest: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("storage: writing temp manifest: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("storage: syncing temp manifest: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("storage: closing temp manifest: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, name)); err != nil {
		return fmt.Errorf("storage: publishing manifest: %w", err)
	}
	return nil
}
