package storage

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/rel"
)

// saveFixtureWithRedo saves the fixture and appends a couple of redo
// records, so corruption trials cover segments, manifest, and a
// non-empty redo log.
func saveFixtureWithRedo(t *testing.T, dir string) {
	t.Helper()
	if _, err := Save(dir, fixtureBuilt(t), Options{MappingSQL: "CREATE ..."}); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rows := [][]rel.Value{
		{rel.Int(6), rel.NullOf(rel.TInt), rel.Str("Appended"), rel.Float(1)},
		{rel.Int(7), rel.NullOf(rel.TInt), rel.Str("Appended 2"), rel.Float(2)},
	}
	for _, r := range rows {
		if err := st.Append("book", r); err != nil {
			t.Fatal(err)
		}
	}
}

// storeFiles lists the store directory's file names sorted by name.
func storeFiles(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range ents {
		if !e.IsDir() {
			out = append(out, e.Name())
		}
	}
	return out
}

// openAll fully opens a store: Open, every table, and the physical
// rebuild. Any of these may fail; none may panic.
func openAll(dir string) (map[string]*rel.Table, error) {
	st, err := Open(dir, Options{})
	if err != nil {
		return nil, err
	}
	db, err := st.Database()
	if err != nil {
		return nil, err
	}
	if _, err := st.Built(); err != nil {
		return nil, err
	}
	out := make(map[string]*rel.Table)
	for _, tb := range db.Tables() {
		out[tb.Name] = tb
	}
	return out, nil
}

// TestCorruptionNeverLies is the crash-recovery property test: flip or
// truncate bytes at seeded random offsets across every store file, and
// require that Open/load either fails cleanly or serves data that is
// still bit-identical to the original. A panic, a partial table, or a
// wrong row count is a test failure.
func TestCorruptionNeverLies(t *testing.T) {
	base := t.TempDir()
	saveFixtureWithRedo(t, base)
	want, err := openAll(base)
	if err != nil {
		t.Fatal(err)
	}
	files := storeFiles(t, base)
	rng := rand.New(rand.NewSource(23))

	trial := func(name string, corrupt func(dir string)) {
		dir := t.TempDir()
		for _, f := range files {
			data, err := os.ReadFile(filepath.Join(base, f))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dir, f), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		corrupt(dir)
		got, err := openAll(dir)
		if err != nil {
			return // clean failure is a correct outcome
		}
		// The store opened despite the corruption: every served value
		// must still be bit-identical (e.g. the corruption hit slack
		// the formats do not have, which in practice cannot happen for
		// checksummed payloads — but if it ever does, the data must be
		// right).
		if len(got) != len(want) {
			t.Fatalf("%s: opened with %d tables, want %d", name, len(got), len(want))
		}
		for n, w := range want {
			g, ok := got[n]
			if !ok {
				t.Fatalf("%s: table %q vanished", name, n)
			}
			tablesBitEqual(t, w, g)
		}
	}

	for i := 0; i < 120; i++ {
		f := files[rng.Intn(len(files))]
		data, err := os.ReadFile(filepath.Join(base, f))
		if err != nil {
			t.Fatal(err)
		}
		if rng.Intn(2) == 0 && len(data) > 0 {
			off := rng.Intn(len(data))
			bit := byte(1 << rng.Intn(8))
			trial("flip", func(dir string) {
				d := append([]byte(nil), data...)
				d[off] ^= bit
				if err := os.WriteFile(filepath.Join(dir, f), d, 0o644); err != nil {
					t.Fatal(err)
				}
			})
		} else {
			off := rng.Intn(len(data) + 1)
			trial("truncate", func(dir string) {
				if err := os.WriteFile(filepath.Join(dir, f), data[:off], 0o644); err != nil {
					t.Fatal(err)
				}
			})
		}
	}

	// Deterministic worst cases on top of the random sweep.
	trial("empty manifest", func(dir string) {
		if err := os.WriteFile(filepath.Join(dir, ManifestName), nil, 0o644); err != nil {
			t.Fatal(err)
		}
	})
	trial("manifest is a segment", func(dir string) {
		seg, err := os.ReadFile(filepath.Join(dir, "t0000.seg"))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, ManifestName), seg, 0o644); err != nil {
			t.Fatal(err)
		}
	})
	trial("segments swapped", func(dir string) {
		a, err := os.ReadFile(filepath.Join(dir, "t0000.seg"))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dir, "t0001.seg"))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "t0000.seg"), b, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "t0001.seg"), a, 0o644); err != nil {
			t.Fatal(err)
		}
	})
	trial("segment deleted", func(dir string) {
		if err := os.Remove(filepath.Join(dir, "t0001.seg")); err != nil {
			t.Fatal(err)
		}
	})
	trial("redo log deleted", func(dir string) {
		if err := os.Remove(filepath.Join(dir, RedoName)); err != nil {
			t.Fatal(err)
		}
	})
	trial("garbage appended to redo", func(dir string) {
		f, err := os.OpenFile(filepath.Join(dir, RedoName), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
			t.Fatal(err)
		}
		f.Close()
	})
}

// TestTruncatedSegmentWrongRowCount pins the specific disaster the
// issue calls out: a truncated segment must never open as a table with
// fewer rows than the manifest promises.
func TestTruncatedSegmentWrongRowCount(t *testing.T) {
	base := t.TempDir()
	saveFixtureWithRedo(t, base)
	seg := filepath.Join(base, "t0000.seg")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(data); cut += 7 {
		if err := os.WriteFile(seg, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := Open(base, Options{})
		if err != nil {
			continue
		}
		if tb, err := st.Table("book"); err == nil {
			t.Fatalf("truncation at %d served table with %d rows", cut, tb.RowCount())
		}
	}
}
