package storage

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/engine"
	"repro/internal/rel"
)

// saveFixtureWithRedo saves the fixture and appends a couple of redo
// records, so corruption trials cover segments, manifest, and a
// non-empty redo log.
func saveFixtureWithRedo(t *testing.T, dir string, opts Options) {
	t.Helper()
	if _, err := Save(dir, fixtureBuilt(t), Options{MappingSQL: "CREATE ...", ChunkRows: opts.ChunkRows}); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rows := [][]rel.Value{
		{rel.Int(6), rel.NullOf(rel.TInt), rel.Str("Appended"), rel.Float(1)},
		{rel.Int(7), rel.NullOf(rel.TInt), rel.Str("Appended 2"), rel.Float(2)},
	}
	for _, r := range rows {
		if err := st.Append("book", r); err != nil {
			t.Fatal(err)
		}
	}
}

// saveCompactedMultiChunk builds a store exercising the other half of
// the format surface: multi-chunk segments, a completed compaction
// (epoch 1 file names), and a fresh redo tail on the new epoch.
func saveCompactedMultiChunk(t *testing.T, dir string) {
	t.Helper()
	built, err := engine.Build(multiChunkDB(200), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Save(dir, built, Options{ChunkRows: 64}); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir, Options{ChunkRows: 64})
	if err != nil {
		t.Fatal(err)
	}
	factRow := func(id int) []rel.Value {
		return []rel.Value{rel.Int(int64(id)), rel.NullOf(rel.TInt), rel.Str("appended"), rel.Float(float64(id))}
	}
	for i := 0; i < 3; i++ {
		if err := st.Append("fact", factRow(1000+i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := st.Append("fact", factRow(2000+i)); err != nil {
			t.Fatal(err)
		}
	}
}

// storeFiles lists the store directory's file names sorted by name.
func storeFiles(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range ents {
		if !e.IsDir() {
			out = append(out, e.Name())
		}
	}
	return out
}

// openAll fully opens a store: Open, every table, and the physical
// rebuild. Any of these may fail; none may panic. A tiny memory budget
// forces the chunk pager and table LRU through eviction on corrupted
// inputs too.
func openAll(dir string) (map[string]*rel.Table, error) {
	st, err := Open(dir, Options{MemBudgetBytes: 8 << 10})
	if err != nil {
		return nil, err
	}
	db, err := st.Database()
	if err != nil {
		return nil, err
	}
	if _, err := st.Built(); err != nil {
		return nil, err
	}
	out := make(map[string]*rel.Table)
	for _, tb := range db.Tables() {
		out[tb.Name] = tb
	}
	return out, nil
}

// corruptionTrial returns a trial runner over a pristine base store:
// each call clones the store, applies one corruption, and requires the
// clone to either fail cleanly or serve data bit-identical to the
// original. A panic, a partial table, or a wrong row count is a test
// failure.
func corruptionTrial(t *testing.T, base string, files []string, want map[string]*rel.Table) func(name string, corrupt func(dir string)) {
	return func(name string, corrupt func(dir string)) {
		dir := t.TempDir()
		for _, f := range files {
			data, err := os.ReadFile(filepath.Join(base, f))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dir, f), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		corrupt(dir)
		got, err := openAll(dir)
		if err != nil {
			return // clean failure is a correct outcome
		}
		// The store opened despite the corruption: every served value
		// must still be bit-identical (e.g. the corruption hit slack
		// the formats do not have, which in practice cannot happen for
		// checksummed payloads — but if it ever does, the data must be
		// right).
		if len(got) != len(want) {
			t.Fatalf("%s: opened with %d tables, want %d", name, len(got), len(want))
		}
		for n, w := range want {
			g, ok := got[n]
			if !ok {
				t.Fatalf("%s: table %q vanished", name, n)
			}
			tablesBitEqual(t, w, g)
		}
	}
}

// corruptionSweep runs the seeded flip/truncate battery over every
// file of the base store.
func corruptionSweep(t *testing.T, base string, trials int, seed int64) {
	want, err := openAll(base)
	if err != nil {
		t.Fatal(err)
	}
	files := storeFiles(t, base)
	rng := rand.New(rand.NewSource(seed))
	trial := corruptionTrial(t, base, files, want)
	for i := 0; i < trials; i++ {
		f := files[rng.Intn(len(files))]
		data, err := os.ReadFile(filepath.Join(base, f))
		if err != nil {
			t.Fatal(err)
		}
		if rng.Intn(2) == 0 && len(data) > 0 {
			off := rng.Intn(len(data))
			bit := byte(1 << rng.Intn(8))
			trial("flip", func(dir string) {
				d := append([]byte(nil), data...)
				d[off] ^= bit
				if err := os.WriteFile(filepath.Join(dir, f), d, 0o644); err != nil {
					t.Fatal(err)
				}
			})
		} else {
			off := rng.Intn(len(data) + 1)
			trial("truncate", func(dir string) {
				if err := os.WriteFile(filepath.Join(dir, f), data[:off], 0o644); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestCorruptionNeverLies is the crash-recovery property test over the
// default (chunked) format, with deterministic worst cases on top of
// the random sweep.
func TestCorruptionNeverLies(t *testing.T) {
	base := t.TempDir()
	saveFixtureWithRedo(t, base, Options{})
	corruptionSweep(t, base, 120, 23)

	want, err := openAll(base)
	if err != nil {
		t.Fatal(err)
	}
	trial := corruptionTrial(t, base, storeFiles(t, base), want)
	trial("empty manifest", func(dir string) {
		if err := os.WriteFile(filepath.Join(dir, ManifestName), nil, 0o644); err != nil {
			t.Fatal(err)
		}
	})
	trial("manifest is a segment", func(dir string) {
		seg, err := os.ReadFile(filepath.Join(dir, "t0000.seg"))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, ManifestName), seg, 0o644); err != nil {
			t.Fatal(err)
		}
	})
	trial("segments swapped", func(dir string) {
		a, err := os.ReadFile(filepath.Join(dir, "t0000.seg"))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dir, "t0001.seg"))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "t0000.seg"), b, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "t0001.seg"), a, 0o644); err != nil {
			t.Fatal(err)
		}
	})
	trial("segment deleted", func(dir string) {
		if err := os.Remove(filepath.Join(dir, "t0001.seg")); err != nil {
			t.Fatal(err)
		}
	})
	trial("redo log deleted", func(dir string) {
		if err := os.Remove(filepath.Join(dir, RedoName)); err != nil {
			t.Fatal(err)
		}
	})
	trial("garbage appended to redo", func(dir string) {
		f, err := os.OpenFile(filepath.Join(dir, RedoName), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
			t.Fatal(err)
		}
		f.Close()
	})
}

// TestCorruptionNeverLiesV1 keeps the legacy whole-table format under
// the same battery now that Save defaults to chunked segments.
func TestCorruptionNeverLiesV1(t *testing.T) {
	base := t.TempDir()
	saveFixtureWithRedo(t, base, Options{ChunkRows: -1})
	corruptionSweep(t, base, 120, 29)
}

// TestCorruptionNeverLiesCompacted runs the battery over a compacted
// multi-chunk store (epoch-1 file names, per-chunk checksums, fresh
// redo tail), plus the compaction-specific worst cases: stray files
// from an unfinished epoch must be ignored, and a missing current-epoch
// redo log must fail cleanly, never serve a wrong row count.
func TestCorruptionNeverLiesCompacted(t *testing.T) {
	base := t.TempDir()
	saveCompactedMultiChunk(t, base)
	corruptionSweep(t, base, 120, 31)

	want, err := openAll(base)
	if err != nil {
		t.Fatal(err)
	}
	trial := corruptionTrial(t, base, storeFiles(t, base), want)
	trial("stray next-epoch files", func(dir string) {
		// A crash mid-compaction leaves half-written epoch-2 files
		// behind; Open reads only what the manifest lists.
		for _, stray := range []string{"t0000.e0002.seg", "redo.e0002.log"} {
			if err := os.WriteFile(filepath.Join(dir, stray), []byte("partial garbage"), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	})
	trial("stray old-epoch segment", func(dir string) {
		seg, err := os.ReadFile(filepath.Join(dir, "t0000.e0001.seg"))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "t0000.seg"), seg[:len(seg)/2], 0o644); err != nil {
			t.Fatal(err)
		}
	})
	trial("current redo log deleted", func(dir string) {
		if err := os.Remove(filepath.Join(dir, "redo.e0001.log")); err != nil {
			t.Fatal(err)
		}
	})
	trial("chunk bytes swapped within segment", func(dir string) {
		// Swap two chunk-sized spans past the directory: the per-chunk
		// CRCs must catch it even though the directory checksum passes.
		path := filepath.Join(dir, "t0000.e0001.seg")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		dirLen := int(chunkedDirLen(data))
		if len(data) < dirLen+128 {
			t.Fatalf("fixture segment too small: %d bytes, directory %d", len(data), dirLen)
		}
		d := append([]byte(nil), data...)
		for i := 0; i < 64; i++ {
			d[dirLen+i], d[dirLen+64+i] = d[dirLen+64+i], d[dirLen+i]
		}
		if err := os.WriteFile(path, d, 0o644); err != nil {
			t.Fatal(err)
		}
	})
}

// TestTruncatedSegmentWrongRowCount pins the specific disaster the
// issue calls out: a truncated segment must never open as a table with
// fewer rows than the manifest promises — in either format.
func TestTruncatedSegmentWrongRowCount(t *testing.T) {
	for _, tc := range []struct {
		name      string
		chunkRows int
	}{{"chunked", 64}, {"v1", -1}} {
		t.Run(tc.name, func(t *testing.T) {
			base := t.TempDir()
			saveFixtureWithRedo(t, base, Options{ChunkRows: tc.chunkRows})
			seg := filepath.Join(base, "t0000.seg")
			data, err := os.ReadFile(seg)
			if err != nil {
				t.Fatal(err)
			}
			for cut := 0; cut < len(data); cut += 7 {
				if err := os.WriteFile(seg, data[:cut], 0o644); err != nil {
					t.Fatal(err)
				}
				st, err := Open(base, Options{})
				if err != nil {
					continue
				}
				if tb, err := st.Table("book"); err == nil {
					t.Fatalf("truncation at %d served table with %d rows", cut, tb.RowCount())
				}
			}
		})
	}
}
