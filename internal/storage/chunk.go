package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/rel"
)

// Chunked segment format (version 2). Version 1 serializes a whole
// table as one checksummed blob, which forces the entire table into
// memory to verify or serve any of it. Version 2 splits the rows into
// fixed-size chunks so the pager can load, verify, and evict them
// independently under a memory budget:
//
//	file      := directory | chunk...
//	directory := "XCSG" | u32 version | u64 len | u32 CRC | dirPayload
//	dirPayload:= str name | str parent | uvarint generation |
//	             uvarint rowCount | uvarint chunkRows |
//	             uvarint ncols | colDesc... |
//	             uvarint nchunks | chunkRef...
//	colDesc   := str name | type byte | nullable byte |
//	             varint leafID | uvarint occurrence
//	chunkRef  := uvarint rows | uvarint size | u32(LE) CRC32-C
//	chunk     := "XCHK" | u32 version | u64 len | u32 CRC | chunkPayload
//	chunkPayload, per column in table order :=
//	             uvarint nullWords | u64 words... |
//	             typed vector (u64 ints/floats; TString:
//	               uvarint dictLen | str... | uvarint codes...) |
//	             uvarint nexc | (uvarint row | value)...
//
// Chunks are laid out back to back immediately after the directory, so
// a chunkRef needs only rows, size, and CRC — offsets are running sums.
// Every chunk holds exactly chunkRows rows except the last, and
// chunkRows is a multiple of 64 so null-bitmap words slice and
// concatenate without shifting. String columns carry a local
// dictionary in first-appearance order within the chunk, making each
// chunk a self-contained, independently verifiable table fragment:
// per-chunk CRC, then bounds-checked decode, then full
// rel.TableFromSnapshot structural validation, exactly the chain whole
// segments go through.
const ChunkSegmentVersion = 2

// DefaultChunkRows is the chunk size Save uses when Options.ChunkRows
// is zero. Must be a multiple of 64.
const DefaultChunkRows = 4096

var (
	chunkDirMagic = [4]byte{'X', 'C', 'S', 'G'}
	chunkMagic    = [4]byte{'X', 'C', 'H', 'K'}
)

// chunkRef locates one chunk inside a chunked segment file.
type chunkRef struct {
	// Rows is the number of rows in the chunk.
	Rows int
	// Off is the chunk's absolute file offset (derived, not stored).
	Off int64
	// Size is the chunk's full framed length in bytes.
	Size int64
	// CRC is the CRC32-C of the full framed chunk.
	CRC uint32
}

// chunkedDir is the parsed directory of a chunked segment.
type chunkedDir struct {
	Name       string
	Parent     string
	Generation int64
	RowCount   int
	ChunkRows  int
	Cols       []rel.Column
	Chunks     []chunkRef
	// DirLen is the framed directory length — the file offset where
	// the first chunk starts.
	DirLen int64
}

// EncodeChunkedSegment serializes a snapshot into the chunked format
// with chunkRows rows per chunk (must be a positive multiple of 64).
// Like EncodeSegment, the encoding is deterministic: the same snapshot
// always yields the same bytes.
func EncodeChunkedSegment(s *rel.TableSnapshot, chunkRows int) ([]byte, error) {
	if chunkRows <= 0 || chunkRows%64 != 0 {
		return nil, fmt.Errorf("storage: chunk size %d is not a positive multiple of 64", chunkRows)
	}
	var refs []chunkRef
	var blobs []byte
	for lo := 0; lo < s.RowCount; lo += chunkRows {
		hi := lo + chunkRows
		if hi > s.RowCount {
			hi = s.RowCount
		}
		part, err := s.SliceSnapshot(lo, hi)
		if err != nil {
			return nil, fmt.Errorf("storage: slicing chunk at row %d: %w", lo, err)
		}
		blob := wrapEnvelope(chunkMagic, ChunkSegmentVersion, encodeChunkPayload(part))
		refs = append(refs, chunkRef{
			Rows: hi - lo,
			Size: int64(len(blob)),
			CRC:  crc32.Checksum(blob, crcTable),
		})
		blobs = append(blobs, blob...)
	}

	var p []byte
	p = appendString(p, s.Name)
	p = appendString(p, s.Parent)
	p = binary.AppendUvarint(p, uint64(s.Generation))
	p = binary.AppendUvarint(p, uint64(s.RowCount))
	p = binary.AppendUvarint(p, uint64(chunkRows))
	p = binary.AppendUvarint(p, uint64(len(s.Columns)))
	for i := range s.Columns {
		c := &s.Columns[i].Col
		p = appendString(p, c.Name)
		p = append(p, byte(c.Typ), boolByte(c.Nullable))
		p = binary.AppendVarint(p, int64(c.LeafID))
		p = binary.AppendUvarint(p, uint64(c.Occurrence))
	}
	p = binary.AppendUvarint(p, uint64(len(refs)))
	for _, r := range refs {
		p = binary.AppendUvarint(p, uint64(r.Rows))
		p = binary.AppendUvarint(p, uint64(r.Size))
		p = binary.LittleEndian.AppendUint32(p, r.CRC)
	}
	return append(wrapEnvelope(chunkDirMagic, ChunkSegmentVersion, p), blobs...), nil
}

// encodeChunkPayload writes one chunk's column vectors. part is a
// self-contained slice snapshot (local dictionary, rebased exceptions).
func encodeChunkPayload(part *rel.TableSnapshot) []byte {
	var p []byte
	for i := range part.Columns {
		cs := &part.Columns[i]
		p = binary.AppendUvarint(p, uint64(len(cs.NullWords)))
		for _, w := range cs.NullWords {
			p = binary.LittleEndian.AppendUint64(p, w)
		}
		switch cs.Col.Typ {
		case rel.TInt:
			for _, v := range cs.Ints {
				p = binary.LittleEndian.AppendUint64(p, uint64(v))
			}
		case rel.TFloat:
			for _, v := range cs.Floats {
				p = binary.LittleEndian.AppendUint64(p, math.Float64bits(v))
			}
		case rel.TString:
			p = binary.AppendUvarint(p, uint64(len(cs.Dict)))
			for _, ds := range cs.Dict {
				p = appendString(p, ds)
			}
			for _, c := range cs.Codes {
				p = binary.AppendUvarint(p, uint64(c))
			}
		}
		p = binary.AppendUvarint(p, uint64(len(cs.Exc)))
		for _, e := range cs.Exc {
			p = binary.AppendUvarint(p, uint64(e.Row))
			p = appendValue(p, e.Val)
		}
	}
	return p
}

// openEnvelopePrefix verifies an envelope that may be followed by more
// data (a chunked segment's directory). It returns the payload and the
// total framed length consumed.
func openEnvelopePrefix(kind string, magic [4]byte, version uint32, data []byte) (payload []byte, consumed int64, err error) {
	if len(data) < envelopeSize {
		return nil, 0, fmt.Errorf("storage: %s truncated: %d bytes, need at least %d", kind, len(data), envelopeSize)
	}
	if [4]byte(data[:4]) != magic {
		return nil, 0, fmt.Errorf("storage: not a %s (magic %q)", kind, data[:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != version {
		return nil, 0, fmt.Errorf("storage: unsupported %s format version %d (this build reads version %d)", kind, v, version)
	}
	n := binary.LittleEndian.Uint64(data[8:16])
	if n > uint64(len(data)-envelopeSize) {
		return nil, 0, fmt.Errorf("storage: %s payload length %d exceeds remaining %d bytes", kind, n, len(data)-envelopeSize)
	}
	payload = data[envelopeSize : envelopeSize+int(n)]
	want := binary.LittleEndian.Uint32(data[16:20])
	if got := crc32.Checksum(payload, crcTable); got != want {
		return nil, 0, fmt.Errorf("storage: %s checksum mismatch: header says %08x, payload hashes to %08x", kind, want, got)
	}
	return payload, envelopeSize + int64(n), nil
}

// decodeChunkedDir parses and validates a chunked segment's directory.
// data may be the whole file or any prefix that covers the directory.
// Like DecodeSegment, it tolerates arbitrary input: every read is
// bounds-checked and allocation sizes are capped by the payload.
func decodeChunkedDir(data []byte) (*chunkedDir, error) {
	payload, consumed, err := openEnvelopePrefix("chunked segment directory", chunkDirMagic, ChunkSegmentVersion, data)
	if err != nil {
		return nil, err
	}
	r := &reader{buf: payload, kind: "chunked segment directory"}
	d := &chunkedDir{DirLen: consumed}
	d.Name = r.str("table name")
	d.Parent = r.str("parent name")
	d.Generation = int64(r.uvarint("generation"))
	rows := r.uvarint("row count")
	chunkRows := r.uvarint("chunk size")
	ncols := r.uvarint("column count")
	if r.err != nil {
		return nil, r.err
	}
	if rows > math.MaxInt32 {
		return nil, r.failf("row count %d is implausible", rows)
	}
	d.RowCount = int(rows)
	if chunkRows == 0 || chunkRows%64 != 0 || chunkRows > math.MaxInt32 {
		return nil, r.failf("chunk size %d is not a positive multiple of 64", chunkRows)
	}
	d.ChunkRows = int(chunkRows)
	if ncols > uint64(r.remaining()) {
		return nil, r.failf("column count %d exceeds remaining payload %d", ncols, r.remaining())
	}
	d.Cols = make([]rel.Column, 0, ncols)
	for i := uint64(0); i < ncols && r.err == nil; i++ {
		var c rel.Column
		c.Name = r.str("column name")
		typ := r.byte("column type")
		nullable := r.byte("nullable flag")
		if r.err != nil {
			return nil, r.err
		}
		switch rel.Type(typ) {
		case rel.TInt, rel.TFloat, rel.TString:
		default:
			return nil, r.failf("unknown column type %d", typ)
		}
		if nullable > 1 {
			return nil, r.failf("nullable flag %d is not a boolean", nullable)
		}
		c.Typ = rel.Type(typ)
		c.Nullable = nullable == 1
		c.LeafID = int(r.varint("leaf id"))
		c.Occurrence = int(r.uvarint("occurrence"))
		d.Cols = append(d.Cols, c)
	}
	nchunks := r.uvarint("chunk count")
	if r.err != nil {
		return nil, r.err
	}
	if nchunks > uint64(r.remaining()) {
		return nil, r.failf("chunk count %d exceeds remaining payload %d", nchunks, r.remaining())
	}
	wantChunks := uint64(0)
	if d.RowCount > 0 {
		wantChunks = uint64((d.RowCount + d.ChunkRows - 1) / d.ChunkRows)
	}
	if nchunks != wantChunks {
		return nil, r.failf("%d chunks for %d rows at %d rows/chunk, want %d", nchunks, d.RowCount, d.ChunkRows, wantChunks)
	}
	d.Chunks = make([]chunkRef, 0, nchunks)
	off := consumed
	total := 0
	for i := uint64(0); i < nchunks && r.err == nil; i++ {
		var c chunkRef
		crows := r.uvarint("chunk rows")
		csize := r.uvarint("chunk bytes")
		c.CRC = r.u32("chunk crc")
		if r.err != nil {
			return nil, r.err
		}
		wantRows := uint64(d.ChunkRows)
		if i == nchunks-1 {
			wantRows = uint64(d.RowCount - int(i)*d.ChunkRows)
		}
		if crows != wantRows {
			return nil, r.failf("chunk %d holds %d rows, want %d", i, crows, wantRows)
		}
		if csize < envelopeSize || csize > math.MaxInt32 {
			return nil, r.failf("chunk %d size %d is impossible", i, csize)
		}
		c.Rows = int(crows)
		c.Size = int64(csize)
		c.Off = off
		off += c.Size
		total += c.Rows
		d.Chunks = append(d.Chunks, c)
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.remaining() != 0 {
		return nil, r.failf("%d trailing bytes after chunk directory", r.remaining())
	}
	if total != d.RowCount {
		return nil, r.failf("chunks hold %d rows, directory says %d", total, d.RowCount)
	}
	return d, nil
}

// fileSize returns the exact file length the directory implies:
// directory plus every chunk, back to back.
func (d *chunkedDir) fileSize() int64 {
	n := d.DirLen
	for i := range d.Chunks {
		n += d.Chunks[i].Size
	}
	return n
}

// decodeChunk parses and validates one chunk blob against the
// directory: envelope CRC, bounds-checked decode of every column
// vector, then full rel.TableFromSnapshot structural validation — the
// same chain a whole version-1 segment goes through, at chunk
// granularity. The returned snapshot is self-contained (local
// dictionary, local exception rows).
func (d *chunkedDir) decodeChunk(k int, blob []byte) (*rel.TableSnapshot, error) {
	ref := &d.Chunks[k]
	if int64(len(blob)) != ref.Size {
		return nil, fmt.Errorf("storage: chunk %d of %s is %d bytes, directory says %d", k, d.Name, len(blob), ref.Size)
	}
	if got := crc32.Checksum(blob, crcTable); got != ref.CRC {
		return nil, fmt.Errorf("storage: chunk %d of %s checksum mismatch: directory says %08x, blob hashes to %08x", k, d.Name, ref.CRC, got)
	}
	payload, err := openEnvelope("chunk", chunkMagic, ChunkSegmentVersion, blob)
	if err != nil {
		return nil, err
	}
	rows := ref.Rows
	r := &reader{buf: payload, kind: "chunk"}
	snap := &rel.TableSnapshot{
		Name:     d.Name,
		Parent:   d.Parent,
		RowCount: rows,
		Columns:  make([]rel.ColumnSnapshot, 0, len(d.Cols)),
	}
	for _, col := range d.Cols {
		cs := rel.ColumnSnapshot{Col: col}
		nwords := r.uvarint("bitmap word count")
		if nwords > uint64(r.remaining())/8 {
			return nil, r.failf("bitmap of %d words exceeds remaining payload %d", nwords, r.remaining())
		}
		if r.err == nil && nwords > 0 {
			cs.NullWords = make([]uint64, nwords)
			for w := range cs.NullWords {
				cs.NullWords[w] = r.u64("bitmap word")
			}
		}
		switch col.Typ {
		case rel.TInt:
			if uint64(rows)*8 > uint64(r.remaining()) {
				return nil, r.failf("int vector of %d rows exceeds remaining payload %d", rows, r.remaining())
			}
			cs.Ints = make([]int64, rows)
			for ri := range cs.Ints {
				cs.Ints[ri] = int64(r.u64("int value"))
			}
		case rel.TFloat:
			if uint64(rows)*8 > uint64(r.remaining()) {
				return nil, r.failf("float vector of %d rows exceeds remaining payload %d", rows, r.remaining())
			}
			cs.Floats = make([]float64, rows)
			for ri := range cs.Floats {
				cs.Floats[ri] = math.Float64frombits(r.u64("float value"))
			}
		case rel.TString:
			dn := r.uvarint("dictionary size")
			if dn > uint64(r.remaining()) {
				return nil, r.failf("dictionary of %d entries exceeds remaining payload %d", dn, r.remaining())
			}
			if r.err == nil && dn > 0 {
				cs.Dict = make([]string, dn)
				for di := range cs.Dict {
					cs.Dict[di] = r.str("dictionary entry")
				}
			}
			cs.Codes = make([]uint32, rows)
			for ri := range cs.Codes {
				c := r.uvarint("string code")
				if c > math.MaxUint32 {
					return nil, r.failf("string code %d overflows uint32", c)
				}
				cs.Codes[ri] = uint32(c)
			}
		}
		nexc := r.uvarint("exception count")
		if nexc > uint64(rows) {
			return nil, r.failf("exception count %d exceeds chunk rows %d", nexc, rows)
		}
		if r.err == nil && nexc > 0 {
			cs.Exc = make([]rel.ExcEntry, nexc)
			for ei := range cs.Exc {
				cs.Exc[ei].Row = int(r.uvarint("exception row"))
				cs.Exc[ei].Val = r.value()
			}
		}
		if r.err != nil {
			return nil, r.err
		}
		snap.Columns = append(snap.Columns, cs)
	}
	if r.remaining() != 0 {
		return nil, r.failf("%d trailing bytes after chunk data", r.remaining())
	}
	// Structural validation: a chunk must be a valid table fragment in
	// its own right (bitmap shape, dictionary canonicality, exception
	// faithfulness) before any of its rows are served or merged.
	if _, err := rel.TableFromSnapshot(snap); err != nil {
		return nil, fmt.Errorf("storage: chunk %d of %s: %w", k, d.Name, err)
	}
	return snap, nil
}

// mergeChunks reassembles a full-table snapshot from per-chunk
// snapshots in order. Numeric vectors and bitmap words concatenate
// directly (every chunk but the last holds a multiple of 64 rows);
// string columns re-intern each chunk's local dictionary in row order,
// which reproduces the original global first-appearance dictionary;
// exception rows are rebased onto the table. The caller validates the
// result through rel.TableFromSnapshot.
func (d *chunkedDir) mergeChunks(parts []*rel.TableSnapshot) (*rel.TableSnapshot, error) {
	if len(parts) != len(d.Chunks) {
		return nil, fmt.Errorf("storage: merging %d chunks of %s, directory says %d", len(parts), d.Name, len(d.Chunks))
	}
	out := &rel.TableSnapshot{
		Name:       d.Name,
		Parent:     d.Parent,
		Generation: d.Generation,
		RowCount:   d.RowCount,
		Columns:    make([]rel.ColumnSnapshot, len(d.Cols)),
	}
	type strState struct {
		dict  []string
		codes map[string]uint32
	}
	states := make([]strState, len(d.Cols))
	for ci, col := range d.Cols {
		out.Columns[ci].Col = col
		if col.Typ == rel.TString {
			states[ci].codes = make(map[string]uint32)
			out.Columns[ci].Codes = make([]uint32, 0, d.RowCount)
		}
	}
	base := 0
	for pi, part := range parts {
		if part.RowCount != d.Chunks[pi].Rows || len(part.Columns) != len(d.Cols) {
			return nil, fmt.Errorf("storage: chunk %d of %s has shape %d rows / %d cols, directory says %d / %d",
				pi, d.Name, part.RowCount, len(part.Columns), d.Chunks[pi].Rows, len(d.Cols))
		}
		for ci := range d.Cols {
			cs := &part.Columns[ci]
			oc := &out.Columns[ci]
			excAt := make(map[int]rel.Value, len(cs.Exc))
			for _, e := range cs.Exc {
				excAt[e.Row] = e.Val
				oc.Exc = append(oc.Exc, rel.ExcEntry{Row: e.Row + base, Val: e.Val})
			}
			oc.NullWords = append(oc.NullWords, cs.NullWords...)
			switch d.Cols[ci].Typ {
			case rel.TInt:
				oc.Ints = append(oc.Ints, cs.Ints...)
			case rel.TFloat:
				oc.Floats = append(oc.Floats, cs.Floats...)
			case rel.TString:
				st := &states[ci]
				for r := 0; r < part.RowCount; r++ {
					// Rows that store no payload (NULL, or an exception
					// of another type) keep code 0 without interning,
					// mirroring colVec.append.
					zero := cs.NullWords[r/64]&(1<<uint(r%64)) != 0
					if e, ok := excAt[r]; ok {
						zero = e.Null || e.Typ != rel.TString
					}
					if zero {
						oc.Codes = append(oc.Codes, 0)
						continue
					}
					lc := cs.Codes[r]
					if int(lc) >= len(cs.Dict) {
						return nil, fmt.Errorf("storage: chunk %d of %s: row %d code %d exceeds local dictionary %d",
							pi, d.Name, r, lc, len(cs.Dict))
					}
					str := cs.Dict[lc]
					gc, ok := st.codes[str]
					if !ok {
						gc = uint32(len(st.dict))
						st.dict = append(st.dict, str)
						st.codes[str] = gc
					}
					oc.Codes = append(oc.Codes, gc)
				}
			}
		}
		base += part.RowCount
	}
	for ci := range d.Cols {
		if d.Cols[ci].Typ == rel.TString {
			out.Columns[ci].Dict = states[ci].dict
		}
	}
	return out, nil
}

// DecodeChunkedSegment parses a whole chunked segment file back into a
// full-table snapshot: directory, every chunk through the per-chunk
// verification chain, then reassembly. Callers must still run the
// result through rel.TableFromSnapshot (exactly like DecodeSegment);
// the native fuzz target FuzzChunkDecode hammers this entry point.
func DecodeChunkedSegment(data []byte) (*rel.TableSnapshot, error) {
	d, err := decodeChunkedDir(data)
	if err != nil {
		return nil, err
	}
	if int64(len(data)) != d.fileSize() {
		return nil, fmt.Errorf("storage: chunked segment %s is %d bytes, directory implies %d", d.Name, len(data), d.fileSize())
	}
	parts := make([]*rel.TableSnapshot, len(d.Chunks))
	for k := range d.Chunks {
		ref := &d.Chunks[k]
		part, err := d.decodeChunk(k, data[ref.Off:ref.Off+ref.Size])
		if err != nil {
			return nil, err
		}
		parts[k] = part
	}
	return d.mergeChunks(parts)
}
