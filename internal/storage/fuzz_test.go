package storage

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/rel"
)

// FuzzSegmentDecode hammers the segment decoder with arbitrary bytes.
// The properties:
//
//  1. DecodeSegment never panics and never allocates proportionally to
//     claimed (rather than actual) sizes.
//  2. Anything that decodes AND validates through rel.TableFromSnapshot
//     re-encodes to a segment that decodes back to a bit-identical
//     table (round-trip identity on the accepted subset).
func FuzzSegmentDecode(f *testing.F) {
	for _, tb := range fixtureDB().Tables() {
		f.Add(EncodeSegment(tb.Snapshot()))
	}
	// Minimal valid segment: empty single-column table.
	empty := rel.NewTable("e", []rel.Column{{Name: rel.IDColumn, Typ: rel.TInt}})
	f.Add(EncodeSegment(empty.Snapshot()))
	// Seeds aimed at the interesting branches: bad magic, future
	// version, truncations, and a CRC-valid envelope over garbage.
	seed := EncodeSegment(empty.Snapshot())
	bad := append([]byte(nil), seed...)
	bad[0] ^= 0xff
	f.Add(bad)
	future := append([]byte(nil), seed...)
	binary.LittleEndian.PutUint32(future[4:8], SegmentVersion+1)
	f.Add(future)
	f.Add(seed[:len(seed)-3])
	f.Add(wrapEnvelope(segMagic, SegmentVersion, []byte{0x01, 0x61, 0x00, 0xff, 0xff, 0xff, 0xff}))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := DecodeSegment(data)
		if err != nil {
			return
		}
		tb, err := rel.TableFromSnapshot(snap)
		if err != nil {
			return
		}
		enc := EncodeSegment(tb.Snapshot())
		snap2, err := DecodeSegment(enc)
		if err != nil {
			t.Fatalf("re-encoding of accepted segment does not decode: %v", err)
		}
		tb2, err := rel.TableFromSnapshot(snap2)
		if err != nil {
			t.Fatalf("re-encoding of accepted segment does not validate: %v", err)
		}
		if tb.Name != tb2.Name || tb.RowCount() != tb2.RowCount() ||
			tb.Generation() != tb2.Generation() || tb.Bytes() != tb2.Bytes() {
			t.Fatalf("round trip drifted: %s/%d/%d/%d vs %s/%d/%d/%d",
				tb.Name, tb.RowCount(), tb.Generation(), tb.Bytes(),
				tb2.Name, tb2.RowCount(), tb2.Generation(), tb2.Bytes())
		}
		for r := 0; r < tb.RowCount(); r++ {
			for c := range tb.Columns {
				if !tb.ValueAt(r, c).BitEqual(tb2.ValueAt(r, c)) {
					t.Fatalf("round trip drifted at (%d,%d)", r, c)
				}
			}
		}
		// A second encoding must be byte-stable.
		if !bytes.Equal(enc, EncodeSegment(tb2.Snapshot())) {
			t.Fatal("encoding of accepted segment is not deterministic")
		}
	})
}

// FuzzRedoDecode gives the redo log reader the same treatment: no
// panics, and accepted logs re-encode faithfully in the same framing —
// including the batched (version 2) group-commit framing.
func FuzzRedoDecode(f *testing.F) {
	f.Add(emptyRedoLog(RedoVersion))
	f.Add(emptyRedoLog(RedoBatchVersion))
	log := emptyRedoLog(RedoVersion)
	rec := encodeRedoRecord("book", []rel.Value{rel.Int(1), rel.Str("x")})
	withRec := append(append(log[:redoHeaderSize:redoHeaderSize], rec...), encodeRedoFooter(1)...)
	f.Add(withRec)
	f.Add(withRec[:len(withRec)-redoFooterSize]) // committed record, missing footer
	// A batched record: three rows to one table under one frame.
	batched := emptyRedoLog(RedoBatchVersion)[:redoHeaderSize]
	batched = append(batched, encodeRedoBatchRecord("book", [][]rel.Value{
		{rel.Int(1), rel.Str("x")},
		{rel.Int(2), rel.Str("y")},
		{rel.NullOf(rel.TInt), rel.Str("z")},
	})...)
	batched = append(batched, encodeRedoFooter(3)...)
	f.Add(batched)
	f.Add([]byte("XRDO"))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, version, err := readRedo(data)
		if err != nil {
			return
		}
		out := emptyRedoLog(version)[:redoHeaderSize]
		if version == RedoVersion {
			for _, r := range recs {
				out = append(out, encodeRedoRecord(r.Table, r.Row)...)
			}
		} else {
			for _, r := range recs {
				out = append(out, encodeRedoBatchRecord(r.Table, [][]rel.Value{r.Row})...)
			}
		}
		out = append(out, encodeRedoFooter(uint32(len(recs)))...)
		recs2, version2, err := readRedo(out)
		if err != nil {
			t.Fatalf("re-encoding of accepted redo log rejected: %v", err)
		}
		if version2 != version {
			t.Fatalf("round trip changed version: %d vs %d", version2, version)
		}
		if len(recs2) != len(recs) {
			t.Fatalf("round trip drifted: %d records vs %d", len(recs2), len(recs))
		}
		for i := range recs {
			if recs[i].Table != recs2[i].Table || len(recs[i].Row) != len(recs2[i].Row) {
				t.Fatalf("record %d drifted", i)
			}
			for j := range recs[i].Row {
				if !recs[i].Row[j].BitEqual(recs2[i].Row[j]) {
					t.Fatalf("record %d value %d drifted", i, j)
				}
			}
		}
	})
}

// FuzzChunkDecode hammers the chunked-segment decoder: arbitrary bytes
// never panic, and anything that decodes AND validates re-encodes to a
// chunked segment that decodes back bit-identically.
func FuzzChunkDecode(f *testing.F) {
	for _, tb := range fixtureDB().Tables() {
		enc, err := EncodeChunkedSegment(tb.Snapshot(), 64)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	empty := rel.NewTable("e", []rel.Column{{Name: rel.IDColumn, Typ: rel.TInt}})
	seed, err := EncodeChunkedSegment(empty.Snapshot(), DefaultChunkRows)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	bad := append([]byte(nil), seed...)
	bad[0] ^= 0xff
	f.Add(bad)
	future := append([]byte(nil), seed...)
	binary.LittleEndian.PutUint32(future[4:8], ChunkSegmentVersion+1)
	f.Add(future)
	f.Add(seed[:len(seed)-3])
	f.Add(wrapEnvelope(chunkDirMagic, ChunkSegmentVersion, []byte{0x01, 0x61, 0x00, 0xff, 0xff, 0xff, 0xff}))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := DecodeChunkedSegment(data)
		if err != nil {
			return
		}
		tb, err := rel.TableFromSnapshot(snap)
		if err != nil {
			return
		}
		enc, err := EncodeChunkedSegment(tb.Snapshot(), 64)
		if err != nil {
			t.Fatalf("re-encoding of accepted chunked segment failed: %v", err)
		}
		snap2, err := DecodeChunkedSegment(enc)
		if err != nil {
			t.Fatalf("re-encoding of accepted chunked segment does not decode: %v", err)
		}
		tb2, err := rel.TableFromSnapshot(snap2)
		if err != nil {
			t.Fatalf("re-encoding of accepted chunked segment does not validate: %v", err)
		}
		if tb.Name != tb2.Name || tb.RowCount() != tb2.RowCount() ||
			tb.Generation() != tb2.Generation() || tb.Bytes() != tb2.Bytes() {
			t.Fatalf("round trip drifted: %s/%d/%d/%d vs %s/%d/%d/%d",
				tb.Name, tb.RowCount(), tb.Generation(), tb.Bytes(),
				tb2.Name, tb2.RowCount(), tb2.Generation(), tb2.Bytes())
		}
		for r := 0; r < tb.RowCount(); r++ {
			for c := range tb.Columns {
				if !tb.ValueAt(r, c).BitEqual(tb2.ValueAt(r, c)) {
					t.Fatalf("round trip drifted at (%d,%d)", r, c)
				}
			}
		}
		// A second encoding must be byte-stable.
		enc2, err := EncodeChunkedSegment(tb2.Snapshot(), 64)
		if err != nil || !bytes.Equal(enc, enc2) {
			t.Fatal("encoding of accepted chunked segment is not deterministic")
		}
	})
}
