package storage

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/rel"
)

// multiChunkDB builds a database whose tables span several chunks at
// 64 rows/chunk, with every storage shape crossing chunk boundaries:
// NULLs, duplicate strings (some repeating across chunks, some local),
// non-finite floats, and wrong-typed appends (exception slots) placed
// on both sides of boundary rows.
func multiChunkDB(rows int) *rel.Database {
	t := rel.NewTable("fact", []rel.Column{
		{Name: rel.IDColumn, Typ: rel.TInt},
		{Name: rel.PIDColumn, Typ: rel.TInt, Nullable: true},
		{Name: "tag", Typ: rel.TString, Nullable: true, LeafID: 3},
		{Name: "val", Typ: rel.TFloat, Nullable: true, LeafID: 4},
	})
	for i := 0; i < rows; i++ {
		row := []rel.Value{rel.Int(int64(i)), rel.NullOf(rel.TInt), {}, {}}
		switch i % 11 {
		case 0:
			row[2] = rel.Str("common") // repeats in every chunk
		case 1:
			row[2] = rel.NullOf(rel.TString)
		case 2:
			row[2] = rel.Int(int64(1900 + i)) // wrong type: exception slot
		default:
			row[2] = rel.Str(fmt.Sprintf("tag-%d", i/7)) // spans boundaries
		}
		switch i % 13 {
		case 0:
			row[3] = rel.Float(math.NaN())
		case 1:
			row[3] = rel.Float(math.Copysign(0, -1))
		case 2:
			row[3] = rel.NullOf(rel.TFloat)
		case 3:
			row[3] = rel.Str(fmt.Sprintf("%d.5", i)) // wrong type
		default:
			row[3] = rel.Float(float64(i) / 3)
		}
		t.AppendRow(row)
	}
	db := rel.NewDatabase()
	db.Add(t)
	return db
}

func TestChunkedEncodeDeterministic(t *testing.T) {
	for _, tb := range fixtureDB().Tables() {
		a, err := EncodeChunkedSegment(tb.Snapshot(), 64)
		if err != nil {
			t.Fatal(err)
		}
		b, err := EncodeChunkedSegment(tb.Snapshot(), 64)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("table %q: two chunked encodings of the same table differ", tb.Name)
		}
	}
}

func TestChunkedRoundTrip(t *testing.T) {
	dbs := []*rel.Database{fixtureDB(), multiChunkDB(333)}
	for _, db := range dbs {
		for _, tb := range db.Tables() {
			for _, chunkRows := range []int{64, 128, DefaultChunkRows} {
				enc, err := EncodeChunkedSegment(tb.Snapshot(), chunkRows)
				if err != nil {
					t.Fatalf("table %q chunk %d: %v", tb.Name, chunkRows, err)
				}
				snap, err := DecodeChunkedSegment(enc)
				if err != nil {
					t.Fatalf("table %q chunk %d: %v", tb.Name, chunkRows, err)
				}
				got, err := rel.TableFromSnapshot(snap)
				if err != nil {
					t.Fatalf("table %q chunk %d: %v", tb.Name, chunkRows, err)
				}
				tablesBitEqual(t, tb, got)
			}
		}
	}
}

// TestChunkedRejectsBadChunkSize pins the chunkRows contract: only
// positive multiples of 64 encode (bitmap words must slice cleanly).
func TestChunkedRejectsBadChunkSize(t *testing.T) {
	snap := fixtureDB().Tables()[0].Snapshot()
	for _, bad := range []int{-64, 0, 1, 63, 65, 100} {
		if _, err := EncodeChunkedSegment(snap, bad); err == nil {
			t.Fatalf("chunk size %d accepted", bad)
		}
	}
}

// TestChunkedGolden pins the chunked wire format byte for byte, like
// TestSegmentGolden pins version 1: any change must come with a
// version bump and regenerated goldens
// (go test ./internal/storage -run ChunkedGolden -update).
func TestChunkedGolden(t *testing.T) {
	for _, tb := range fixtureDB().Tables() {
		enc, err := EncodeChunkedSegment(tb.Snapshot(), 64)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join("testdata", "golden", tb.Name+".cseg")
		if *updateGolden {
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, enc, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("golden file missing (regenerate with -update): %v", err)
		}
		if !bytes.Equal(enc, want) {
			t.Fatalf("table %q: chunked encoding differs from golden file %s (%d vs %d bytes) — format drifted without a version bump",
				tb.Name, path, len(enc), len(want))
		}
		snap, err := DecodeChunkedSegment(want)
		if err != nil {
			t.Fatal(err)
		}
		got, err := rel.TableFromSnapshot(snap)
		if err != nil {
			t.Fatal(err)
		}
		tablesBitEqual(t, tb, got)
	}
}

// TestChunkedFlipsNeverLie flips sampled bits across a multi-chunk
// encoding: every flip must either fail decode or (never observed for
// a checksummed format) still produce bit-identical data.
func TestChunkedFlipsNeverLie(t *testing.T) {
	tb := multiChunkDB(200).Table("fact")
	enc, err := EncodeChunkedSegment(tb.Snapshot(), 64)
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(enc); off += 17 {
		d := append([]byte(nil), enc...)
		d[off] ^= 0x10
		snap, err := DecodeChunkedSegment(d)
		if err != nil {
			continue
		}
		got, err := rel.TableFromSnapshot(snap)
		if err != nil {
			continue
		}
		tablesBitEqual(t, tb, got)
	}
}

// TestSliceSnapshotSelfContained checks the chunk-granular slicing
// contract in internal/rel: every 64-aligned slice is a valid table in
// its own right, bit-identical to the source rows.
func TestSliceSnapshotSelfContained(t *testing.T) {
	tb := multiChunkDB(300).Table("fact")
	snap := tb.Snapshot()
	for _, span := range [][2]int{{0, 64}, {64, 128}, {256, 300}, {0, 300}, {128, 129}, {192, 192}} {
		part, err := snap.SliceSnapshot(span[0], span[1])
		if err != nil {
			t.Fatalf("slice [%d,%d): %v", span[0], span[1], err)
		}
		pt, err := rel.TableFromSnapshot(part)
		if err != nil {
			t.Fatalf("slice [%d,%d) does not validate: %v", span[0], span[1], err)
		}
		if pt.RowCount() != span[1]-span[0] {
			t.Fatalf("slice [%d,%d) has %d rows", span[0], span[1], pt.RowCount())
		}
		for r := 0; r < pt.RowCount(); r++ {
			for c := range tb.Columns {
				if !tb.ValueAt(span[0]+r, c).BitEqual(pt.ValueAt(r, c)) {
					t.Fatalf("slice [%d,%d) drifted at (%d,%d)", span[0], span[1], r, c)
				}
			}
		}
	}
	// Misaligned or out-of-range slices are refused.
	for _, span := range [][2]int{{1, 65}, {32, 64}, {0, 301}, {-64, 0}, {128, 64}} {
		if _, err := snap.SliceSnapshot(span[0], span[1]); err == nil {
			t.Fatalf("slice [%d,%d) accepted", span[0], span[1])
		}
	}
}
