package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// Small scales keep the experiment smoke tests fast.
func tinyMovie(t *testing.T) *Dataset {
	t.Helper()
	return LoadMovie(0.15) // 1500 movies
}

func tinyDBLP(t *testing.T) *Dataset {
	t.Helper()
	return LoadDBLP(0.08) // 1600 inproceedings
}

func smallWorkload(t *testing.T, d *Dataset, n int) *workload.Workload {
	t.Helper()
	params := workload.StandardParams(n, 99)[0] // LP-HS
	w, err := workload.Generate(d.Tree, d.Col, params)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestRunComparisonShapes(t *testing.T) {
	d := tinyMovie(t)
	w := smallWorkload(t, d, 6)
	rows, err := RunComparison(d, w, Algorithms{Greedy: true, Two: true}, core.Options{MaxRounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 (hybrid, two-step, greedy)", len(rows))
	}
	byAlg := map[string]Row{}
	for _, r := range rows {
		byAlg[r.Algorithm] = r
	}
	hy := byAlg["Hybrid"]
	gr := byAlg["Greedy"]
	ts := byAlg["Two-Step"]
	if hy.NormExec != 1.0 {
		t.Errorf("hybrid normExec = %f, want 1", hy.NormExec)
	}
	// Fig. 4 shape: the combined search is not worse than hybrid in
	// estimated cost.
	if gr.NormEst > 1.01 {
		t.Errorf("greedy normEst = %f > 1", gr.NormEst)
	}
	// Fig. 6 shape: Greedy searches fewer transformations than
	// Two-Step (which enumerates everything).
	if gr.Transformations >= ts.Transformations {
		t.Errorf("greedy searched %d >= two-step %d", gr.Transformations, ts.Transformations)
	}
	var sb strings.Builder
	PrintRows(&sb, "test", rows)
	if !strings.Contains(sb.String(), "Greedy") {
		t.Error("PrintRows missing algorithm name")
	}
}

func TestRunComparisonWithNaive(t *testing.T) {
	d := tinyMovie(t)
	w := smallWorkload(t, d, 3)
	rows, err := RunComparison(d, w, Algorithms{Greedy: true, Naive: true, Two: true},
		core.Options{MaxRounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	byAlg := map[string]Row{}
	for _, r := range rows {
		byAlg[r.Algorithm] = r
	}
	na, gr := byAlg["Naive-Greedy"], byAlg["Greedy"]
	// Fig. 5/6 shape: Naive searches more and takes longer.
	if na.Transformations <= gr.Transformations {
		t.Errorf("naive searched %d <= greedy %d", na.Transformations, gr.Transformations)
	}
	if na.SearchTime <= gr.SearchTime {
		t.Errorf("naive search time %v <= greedy %v", na.SearchTime, gr.SearchTime)
	}
}

func TestRunTable1(t *testing.T) {
	rows := []Table1Row{RunTable1(tinyDBLP(t)), RunTable1(tinyMovie(t))}
	for _, r := range rows {
		if r.Elements == 0 || r.Transformations == 0 || r.NonSubsumed == 0 {
			t.Errorf("%s: degenerate table-1 row %+v", r.Dataset, r)
		}
		if r.NonSubsumed >= r.Transformations {
			t.Errorf("%s: non-subsumed %d >= total %d", r.Dataset, r.NonSubsumed, r.Transformations)
		}
	}
	// Paper: the number of non-subsumed transformations is about a
	// factor of two fewer than the total.
	for _, r := range rows {
		if float64(r.Transformations)/float64(r.NonSubsumed) < 1.5 {
			t.Errorf("%s: subsumed share too small: %d vs %d", r.Dataset, r.Transformations, r.NonSubsumed)
		}
	}
	var sb strings.Builder
	PrintTable1(&sb, rows)
	if !strings.Contains(sb.String(), "DBLP") {
		t.Error("PrintTable1 missing dataset")
	}
}

func TestRunFig7(t *testing.T) {
	d := tinyMovie(t)
	w := smallWorkload(t, d, 4)
	rows, err := RunFig7(d, w, core.Options{MaxRounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	var full, subsumed AblationRow
	for _, r := range rows {
		switch r.Variant {
		case "greedy(all-rules)":
			full = r
		case "greedy+subsumed":
			subsumed = r
		}
	}
	// Skipping subsumed transformations is the major speed-up factor.
	if subsumed.Transformations <= full.Transformations {
		t.Errorf("subsumed variant searched %d <= %d", subsumed.Transformations, full.Transformations)
	}
	if full.Speedup < 1 {
		t.Errorf("full variant speedup %f < 1", full.Speedup)
	}
}

func TestRunFig8(t *testing.T) {
	d := tinyMovie(t)
	w := smallWorkload(t, d, 4)
	rows, err := RunFig8(d, w, core.Options{MaxRounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.NormEst <= 0 {
			t.Errorf("%s: degenerate normEst", r.Variant)
		}
	}
}

func TestRunFig9(t *testing.T) {
	d := tinyDBLP(t)
	w := smallWorkload(t, d, 4)
	rows, err := RunFig9(d, w, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var with, without AblationRow
	for _, r := range rows {
		switch r.Variant {
		case "with-derivation":
			with = r
		case "no-derivation":
			without = r
		}
	}
	if with.CostsDerived == 0 {
		t.Error("derivation never fired")
	}
	if with.OptimizerCalls >= without.OptimizerCalls {
		t.Errorf("derivation did not save optimizer calls: %d vs %d",
			with.OptimizerCalls, without.OptimizerCalls)
	}
	// Fig. 9a: little quality drop.
	if without.NormEst > 0 && with.NormEst > without.NormEst*1.25 {
		t.Errorf("derivation quality drop: %f vs %f", with.NormEst, without.NormEst)
	}
}

func TestRunIntroExample(t *testing.T) {
	d := tinyDBLP(t)
	res, err := RunIntroExample(d)
	if err != nil {
		t.Fatal(err)
	}
	if res.SplitCount < 1 || res.SplitCount > 5 {
		t.Errorf("split count = %d", res.SplitCount)
	}
	// The headline shape: with tuning, Mapping 2 must not lose; the
	// paper reports a ~20x win. At our scale expect at least parity.
	if res.TunedRatio() < 0.8 {
		t.Errorf("tuned mapping2 worse than mapping1: ratio %.2f", res.TunedRatio())
	}
	var sb strings.Builder
	PrintIntro(&sb, res)
	if !strings.Contains(sb.String(), "mapping1") {
		t.Error("PrintIntro output malformed")
	}
}
