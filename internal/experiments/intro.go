package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/schema"
	"repro/internal/workload"
	"repro/internal/xpath"
)

// IntroResult reproduces the Section 1.1 motivating example: the
// SIGMOD-papers query under Mapping 1 (hybrid inlining) and Mapping 2
// (first k authors inlined via repetition split), each with and
// without a tuned physical design. The paper measured 5.1 s vs 0.25 s
// tuned (Mapping 2 wins ~20x) and 21 s vs 27 s untuned (Mapping 1
// wins) — choosing the logical design first picks the wrong mapping.
type IntroResult struct {
	// Tuned/Untuned execution times per mapping.
	Mapping1Tuned, Mapping2Tuned     time.Duration
	Mapping1Untuned, Mapping2Untuned time.Duration
	// SplitCount is the chosen k (Section 4.6; the paper uses 5).
	SplitCount int
}

// TunedRatio returns mapping1/mapping2 tuned time (paper: ~20).
func (r *IntroResult) TunedRatio() float64 {
	if r.Mapping2Tuned == 0 {
		return 0
	}
	return float64(r.Mapping1Tuned) / float64(r.Mapping2Tuned)
}

// UntunedRatio returns mapping1/mapping2 untuned time (paper: <1).
func (r *IntroResult) UntunedRatio() float64 {
	if r.Mapping2Untuned == 0 {
		return 0
	}
	return float64(r.Mapping1Untuned) / float64(r.Mapping2Untuned)
}

// RunIntroExample measures the motivating example on a DBLP dataset.
func RunIntroExample(d *Dataset) (*IntroResult, error) {
	q := xpath.MustParse(`/dblp/inproceedings[booktitle = "SIGMOD CONFERENCE"]/(title | year | author)`)
	w := &workload.Workload{Name: "intro", Queries: []workload.Query{{XPath: q, Weight: 1}}}

	// Mapping 1: hybrid inlining.
	m1 := d.Tree.Clone()
	// Mapping 2: repetition split of inproceedings' author.
	m2 := d.Tree.Clone()
	var k int
	for _, n := range m2.ElementsNamed("author") {
		if n.ElementParent().Name == "inproceedings" {
			// The paper inlines the first five authors: the smallest k
			// covering ~99% of publications (Section 4.6).
			if h := d.Col.Card[n.ID]; h != nil {
				k = h.SplitCount(5, 0.95)
			}
			if k == 0 {
				k = 5
			}
			n.SplitCount = k
		}
	}
	out := &IntroResult{SplitCount: k}
	// Median of several measurements: the individual workload times are
	// milliseconds, where scheduler noise would otherwise dominate the
	// reported ratios.
	const measurements = 5
	measure := func(tree *schema.Tree, tuned bool) (time.Duration, error) {
		adv := core.New(tree, d.Col, w, core.Options{})
		res, err := adv.HybridBaseline() // tunes the given tree as-is
		if err != nil {
			return 0, err
		}
		if !tuned {
			// Strip the recommended structures: untuned execution.
			res.Config.Indexes = nil
			res.Config.Views = nil
			res.Config.Partitions = nil
		}
		samples := make([]time.Duration, 0, measurements)
		for i := 0; i < measurements; i++ {
			ex, err := adv.MeasureExecution(res, d.Docs...)
			if err != nil {
				return 0, err
			}
			samples = append(samples, ex.Elapsed)
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		return samples[len(samples)/2], nil
	}
	var err error
	if out.Mapping1Tuned, err = measure(m1, true); err != nil {
		return nil, err
	}
	if out.Mapping2Tuned, err = measure(m2, true); err != nil {
		return nil, err
	}
	if out.Mapping1Untuned, err = measure(m1, false); err != nil {
		return nil, err
	}
	if out.Mapping2Untuned, err = measure(m2, false); err != nil {
		return nil, err
	}
	return out, nil
}

// PrintIntro renders the motivating example.
func PrintIntro(w io.Writer, r *IntroResult) {
	fmt.Fprintf(w, "\n== Section 1.1 motivating example (SIGMOD query, k=%d) ==\n", r.SplitCount)
	fmt.Fprintf(w, "%-28s %12s %12s %8s\n", "", "mapping1", "mapping2", "m1/m2")
	fmt.Fprintf(w, "%-28s %12s %12s %8.2f\n", "with tuned physical design",
		r.Mapping1Tuned, r.Mapping2Tuned, r.TunedRatio())
	fmt.Fprintf(w, "%-28s %12s %12s %8.2f\n", "without physical design",
		r.Mapping1Untuned, r.Mapping2Untuned, r.UntunedRatio())
}
