package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// AblationRow is one Greedy-variant measurement for Figs. 7-9.
type AblationRow struct {
	Dataset, Workload, Variant string
	EstCost                    float64
	NormEst                    float64 // normalized to hybrid inlining
	ExecTime                   time.Duration
	NormExec                   float64
	SearchTime                 time.Duration
	Speedup                    float64 // baseline variant time / this time
	Transformations            int
	PhysDesignCalls            int
	OptimizerCalls             int64
	CostsDerived               int
}

// variantSpec names one Greedy configuration.
type variantSpec struct {
	name string
	opts func(core.Options) core.Options
}

// runVariants measures Greedy under several option variants, always
// including the hybrid baseline for normalization.
func runVariants(d *Dataset, w *workload.Workload, base core.Options,
	variants []variantSpec, measureExec bool) ([]AblationRow, error) {
	adv := core.New(d.Tree, d.Col, w, base)
	hy, err := adv.HybridBaseline()
	if err != nil {
		return nil, err
	}
	var hyExec *core.Execution
	if measureExec {
		hyExec, err = adv.MeasureExecution(hy, d.Docs...)
		if err != nil {
			return nil, err
		}
	}
	var rows []AblationRow
	for _, v := range variants {
		vadv := core.New(d.Tree, d.Col, w, v.opts(base))
		res, err := vadv.Greedy()
		if err != nil {
			return nil, fmt.Errorf("experiments: variant %s on %s: %w", v.name, w.Name, err)
		}
		row := AblationRow{
			Dataset:         d.Name,
			Workload:        w.Name,
			Variant:         v.name,
			EstCost:         res.EstCost,
			SearchTime:      res.Metrics.Duration,
			Transformations: res.Metrics.Transformations,
			PhysDesignCalls: res.Metrics.PhysDesignCalls,
			OptimizerCalls:  res.Metrics.OptimizerCalls,
			CostsDerived:    res.Metrics.CostsDerived,
		}
		if hy.EstCost > 0 {
			row.NormEst = res.EstCost / hy.EstCost
		}
		if measureExec {
			ex, err := vadv.MeasureExecution(res, d.Docs...)
			if err != nil {
				return nil, err
			}
			row.ExecTime = ex.Elapsed
			if hyExec != nil && hyExec.Elapsed > 0 {
				row.NormExec = float64(ex.Elapsed) / float64(hyExec.Elapsed)
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RunFig7 measures the speed-up from candidate selection (Fig. 7):
// the full Greedy against (a) a variant that also searches subsumed
// transformations and (b) a variant without per-query candidate
// selection. Speedup columns are relative to the slowest variant.
func RunFig7(d *Dataset, w *workload.Workload, opts core.Options) ([]AblationRow, error) {
	rows, err := runVariants(d, w, opts, []variantSpec{
		{"greedy(all-rules)", func(o core.Options) core.Options { return o }},
		{"greedy+subsumed", func(o core.Options) core.Options { o.SearchSubsumed = true; return o }},
		{"greedy-no-selection", func(o core.Options) core.Options { o.DisableCandidateSelection = true; return o }},
	}, false)
	if err != nil {
		return nil, err
	}
	// Speed-up of each variant relative to the slowest (the naive-like
	// one with subsumed transformations searched).
	var slowest time.Duration
	for _, r := range rows {
		if r.SearchTime > slowest {
			slowest = r.SearchTime
		}
	}
	for i := range rows {
		if rows[i].SearchTime > 0 {
			rows[i].Speedup = float64(slowest) / float64(rows[i].SearchTime)
		}
	}
	return rows, nil
}

// RunFig8 measures the merging strategies of Section 4.7 (Fig. 8):
// greedy, none, exhaustive — quality and running time.
func RunFig8(d *Dataset, w *workload.Workload, opts core.Options) ([]AblationRow, error) {
	rows, err := runVariants(d, w, opts, []variantSpec{
		{"merge-greedy", func(o core.Options) core.Options { o.Merge = core.MergeGreedy; return o }},
		{"merge-none", func(o core.Options) core.Options { o.Merge = core.MergeNone; return o }},
		{"merge-exhaustive", func(o core.Options) core.Options { o.Merge = core.MergeExhaustive; return o }},
	}, true)
	if err != nil {
		return nil, err
	}
	// Running time normalized to no-merging (the paper's Fig. 8b).
	var none time.Duration
	for _, r := range rows {
		if r.Variant == "merge-none" {
			none = r.SearchTime
		}
	}
	for i := range rows {
		if none > 0 {
			rows[i].Speedup = float64(rows[i].SearchTime) / float64(none)
		}
	}
	return rows, nil
}

// RunFig9 measures cost derivation on/off (Fig. 9): quality and
// running time.
func RunFig9(d *Dataset, w *workload.Workload, opts core.Options) ([]AblationRow, error) {
	rows, err := runVariants(d, w, opts, []variantSpec{
		{"with-derivation", func(o core.Options) core.Options { return o }},
		{"no-derivation", func(o core.Options) core.Options { o.DisableCostDerivation = true; return o }},
	}, true)
	if err != nil {
		return nil, err
	}
	// Speed-up of derivation over no-derivation.
	var with, without time.Duration
	for _, r := range rows {
		switch r.Variant {
		case "with-derivation":
			with = r.SearchTime
		case "no-derivation":
			without = r.SearchTime
		}
	}
	for i := range rows {
		if with > 0 && rows[i].Variant == "with-derivation" {
			rows[i].Speedup = float64(without) / float64(with)
		}
	}
	return rows, nil
}

// PrintAblation renders ablation rows.
func PrintAblation(w io.Writer, title string, rows []AblationRow) {
	fmt.Fprintf(w, "\n== %s ==\n", title)
	fmt.Fprintf(w, "%-8s %-10s %-20s %9s %9s %10s %8s %7s %6s %8s %8s\n",
		"dataset", "workload", "variant", "normEst", "normExec", "search(ms)", "speedup", "#trans", "#tool", "#optcall", "#derived")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %-10s %-20s %9.3f %9.3f %10.1f %8.2f %7d %6d %8d %8d\n",
			r.Dataset, r.Workload, r.Variant, r.NormEst, r.NormExec,
			float64(r.SearchTime.Microseconds())/1000, r.Speedup,
			r.Transformations, r.PhysDesignCalls, r.OptimizerCalls, r.CostsDerived)
	}
}
