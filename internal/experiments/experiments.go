// Package experiments reproduces every table and figure of the paper's
// evaluation (Section 5): the motivating example of Section 1.1, the
// dataset characteristics of Table 1, the quality comparison of Fig. 4,
// the running-time comparison of Fig. 5, the transformations-searched
// counts of Fig. 6, the candidate-selection speed-ups of Fig. 7, the
// merging-strategy breakdown of Fig. 8, and the cost-derivation
// breakdown of Fig. 9. Each runner returns structured rows and can
// print the same series the paper reports.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/schema"
	"repro/internal/stats"
	"repro/internal/transform"
	"repro/internal/workload"
	"repro/internal/xmlgen"
)

// Dataset bundles a schema, its documents, and collected statistics.
type Dataset struct {
	Name string
	Tree *schema.Tree
	Docs []*xmlgen.Doc
	Col  *stats.Collection
}

// Scale sizes the datasets; 1.0 is the default laptop-scale setting.
type Scale float64

// LoadDBLP builds the DBLP dataset at the given scale.
func LoadDBLP(s Scale) *Dataset {
	tree := schema.DBLP()
	opts := xmlgen.DefaultDBLPOptions()
	opts.Inproceedings = int(float64(opts.Inproceedings) * float64(s))
	opts.Books = int(float64(opts.Books) * float64(s))
	doc := xmlgen.GenerateDBLP(tree, opts)
	return &Dataset{
		Name: "DBLP",
		Tree: tree,
		Docs: []*xmlgen.Doc{doc},
		Col:  xmlgen.CollectStats(tree, doc),
	}
}

// LoadMovie builds the Movie dataset at the given scale.
func LoadMovie(s Scale) *Dataset {
	tree := schema.Movie()
	opts := xmlgen.DefaultMovieOptions()
	opts.Movies = int(float64(opts.Movies) * float64(s))
	doc := xmlgen.GenerateMovie(tree, opts)
	return &Dataset{
		Name: "Movie",
		Tree: tree,
		Docs: []*xmlgen.Doc{doc},
		Col:  xmlgen.CollectStats(tree, doc),
	}
}

// Workloads generates the named workloads for a dataset.
func (d *Dataset) Workloads(params []workload.Params) ([]*workload.Workload, error) {
	var out []*workload.Workload
	for _, p := range params {
		w, err := workload.Generate(d.Tree, d.Col, p)
		if err != nil {
			return nil, fmt.Errorf("experiments: workload %s: %w", p.Name, err)
		}
		out = append(out, w)
	}
	return out, nil
}

// Row is one measurement: an algorithm run on one workload.
type Row struct {
	Dataset   string
	Workload  string
	Algorithm string
	// ExecTime is the measured workload execution time under the
	// recommended design; NormExec is normalized to the hybrid
	// baseline of the same workload (Fig. 4).
	ExecTime time.Duration
	NormExec float64
	// EstCost is the tool-estimated workload cost; NormEst normalized
	// to hybrid.
	EstCost float64
	NormEst float64
	// SearchTime is the advisor's wall-clock time; NormSearch is
	// normalized to Two-Step (Fig. 5).
	SearchTime time.Duration
	NormSearch float64
	// Transformations is the number searched (Fig. 6).
	Transformations int
	// PhysDesignCalls / OptimizerCalls / CostsDerived measure tool
	// effort (Figs. 7-9).
	PhysDesignCalls int
	OptimizerCalls  int64
	CostsDerived    int
	// EvalCacheHits / EvalCacheMisses count memoized evaluation reuse
	// in the shared evaluation service.
	EvalCacheHits   int
	EvalCacheMisses int
}

// Algorithms selects which algorithms a comparison run includes.
type Algorithms struct {
	Greedy bool
	Naive  bool
	Two    bool
}

// measureMedian runs the workload several times and keeps the median
// execution, shielding the reported ratios from scheduler noise.
func measureMedian(adv *core.Advisor, res *core.Result, docs []*xmlgen.Doc) (*core.Execution, error) {
	const n = 3
	var best *core.Execution
	samples := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		ex, err := adv.MeasureExecution(res, docs...)
		if err != nil {
			return nil, err
		}
		samples = append(samples, ex.Elapsed)
		best = ex
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	best.Elapsed = samples[n/2]
	return best, nil
}

// RunComparison produces the Fig. 4 / Fig. 5 / Fig. 6 rows for one
// dataset and workload: hybrid baseline plus the selected algorithms,
// each with measured execution. Normalizations are filled in.
func RunComparison(d *Dataset, w *workload.Workload, algos Algorithms, opts core.Options) ([]Row, error) {
	adv := core.New(d.Tree, d.Col, w, opts)
	hy, err := adv.HybridBaseline()
	if err != nil {
		return nil, fmt.Errorf("experiments: hybrid baseline on %s: %w", w.Name, err)
	}
	hyExec, err := measureMedian(adv, hy, d.Docs)
	if err != nil {
		return nil, fmt.Errorf("experiments: executing hybrid on %s: %w", w.Name, err)
	}
	rows := []Row{resultRow(d, w, hy, hyExec, hy, hyExec, nil)}

	type algo struct {
		name string
		run  func() (*core.Result, error)
	}
	var runs []algo
	if algos.Two {
		runs = append(runs, algo{"Two-Step", adv.TwoStep})
	}
	if algos.Naive {
		runs = append(runs, algo{"Naive-Greedy", adv.NaiveGreedy})
	}
	if algos.Greedy {
		runs = append(runs, algo{"Greedy", adv.Greedy})
	}
	var twoStep *Row
	for _, al := range runs {
		res, err := al.run()
		if err != nil {
			return nil, fmt.Errorf("experiments: %s on %s: %w", al.name, w.Name, err)
		}
		ex, err := measureMedian(adv, res, d.Docs)
		if err != nil {
			return nil, fmt.Errorf("experiments: executing %s on %s: %w", al.name, w.Name, err)
		}
		r := resultRow(d, w, res, ex, hy, hyExec, twoStep)
		if al.name == "Two-Step" {
			twoStep = &r
		}
		rows = append(rows, r)
	}
	// Fill Two-Step-normalized search times now that it is known.
	if twoStep != nil {
		for i := range rows {
			if twoStep.SearchTime > 0 {
				rows[i].NormSearch = float64(rows[i].SearchTime) / float64(twoStep.SearchTime)
			}
		}
	}
	return rows, nil
}

func resultRow(d *Dataset, w *workload.Workload, res *core.Result, ex *core.Execution,
	hy *core.Result, hyEx *core.Execution, two *Row) Row {
	r := Row{
		Dataset:         d.Name,
		Workload:        w.Name,
		Algorithm:       res.Algorithm,
		ExecTime:        ex.Elapsed,
		EstCost:         res.EstCost,
		SearchTime:      res.Metrics.Duration,
		Transformations: res.Metrics.Transformations,
		PhysDesignCalls: res.Metrics.PhysDesignCalls,
		OptimizerCalls:  res.Metrics.OptimizerCalls,
		CostsDerived:    res.Metrics.CostsDerived,
		EvalCacheHits:   res.Metrics.EvalCacheHits,
		EvalCacheMisses: res.Metrics.EvalCacheMisses,
	}
	if hyEx.Elapsed > 0 {
		r.NormExec = float64(ex.Elapsed) / float64(hyEx.Elapsed)
	}
	if hy.EstCost > 0 {
		r.NormEst = res.EstCost / hy.EstCost
	}
	if two != nil && two.SearchTime > 0 {
		r.NormSearch = float64(r.SearchTime) / float64(two.SearchTime)
	}
	return r
}

// PrintRows renders rows as an aligned table.
func PrintRows(w io.Writer, title string, rows []Row) {
	fmt.Fprintf(w, "\n== %s ==\n", title)
	fmt.Fprintf(w, "%-8s %-10s %-14s %10s %9s %10s %9s %7s %6s %8s %11s\n",
		"dataset", "workload", "algorithm", "exec(ms)", "norm", "search(ms)", "normTS", "#trans", "#tool", "#optcall", "cache(h/m)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %-10s %-14s %10.2f %9.3f %10.1f %9.2f %7d %6d %8d %11s\n",
			r.Dataset, r.Workload, r.Algorithm,
			float64(r.ExecTime.Microseconds())/1000, r.NormExec,
			float64(r.SearchTime.Microseconds())/1000, r.NormSearch,
			r.Transformations, r.PhysDesignCalls, r.OptimizerCalls,
			fmt.Sprintf("%d/%d", r.EvalCacheHits, r.EvalCacheMisses))
	}
}

// Table1Row reports dataset characteristics (Table 1).
type Table1Row struct {
	Dataset         string
	Elements        int
	Leaves          int
	Optionals       int
	Choices         int
	Repetitions     int
	SharedTypes     int
	DataBytes       int64
	Transformations int
	NonSubsumed     int
}

// RunTable1 computes the Table 1 characteristics for a dataset.
func RunTable1(d *Dataset) Table1Row {
	row := Table1Row{Dataset: d.Name, DataBytes: d.Col.DocBytes}
	d.Tree.Walk(func(n *schema.Node) {
		switch n.Kind {
		case schema.KindElement:
			row.Elements++
			if n.IsLeaf() {
				row.Leaves++
			}
		case schema.KindChoice:
			row.Choices++
		case schema.KindOption:
			row.Optionals++
		case schema.KindRepetition:
			row.Repetitions++
		}
	})
	row.SharedTypes = len(d.Tree.SharedTypeGroups())
	row.Transformations = len(transform.EnumerateAll(d.Tree, d.Col))
	row.NonSubsumed = len(transform.EnumerateNonSubsumed(d.Tree, d.Col))
	return row
}

// PrintTable1 renders Table 1 rows.
func PrintTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintf(w, "\n== Table 1: dataset characteristics ==\n")
	fmt.Fprintf(w, "%-8s %9s %7s %9s %8s %12s %12s %10s %13s %12s\n",
		"dataset", "elements", "leaves", "optional", "choices", "repetitions", "sharedTypes", "bytes", "#transforms", "#nonsubsumed")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %9d %7d %9d %8d %12d %12d %10d %13d %12d\n",
			r.Dataset, r.Elements, r.Leaves, r.Optionals, r.Choices, r.Repetitions,
			r.SharedTypes, r.DataBytes, r.Transformations, r.NonSubsumed)
	}
}

// SortRows orders rows by (workload, algorithm) for stable output.
func SortRows(rows []Row) {
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].Workload != rows[j].Workload {
			return rows[i].Workload < rows[j].Workload
		}
		return rows[i].Algorithm < rows[j].Algorithm
	})
}
