package xmlshred_test

import (
	"fmt"
	"log"

	xmlshred "repro"
)

// ExampleParseQuery shows the supported XPath subset.
func ExampleParseQuery() {
	q, err := xmlshred.ParseQuery(`//movie[title = "Titanic"]/(aka_title | avg_rating)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(q.ContextName())
	fmt.Println(q.Pred)
	fmt.Println(q.Proj[0], q.Proj[1])
	// Output:
	// movie
	// [title = "Titanic"]
	// aka_title avg_rating
}

// ExampleCompileMapping shows the hybrid-inlining relational schema of
// the paper's Movie example (Fig. 1b).
func ExampleCompileMapping() {
	m, err := xmlshred.CompileMapping(xmlshred.MovieSchema())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(m.SQLSchema())
	// Output:
	// CREATE TABLE movies (ID INT NOT NULL, PID INT);
	// CREATE TABLE movie (ID INT NOT NULL, PID INT NOT NULL, title VARCHAR NOT NULL, year INT NOT NULL, avg_rating FLOAT, box_office INT, seasons INT, genre VARCHAR NOT NULL, country VARCHAR NOT NULL, language VARCHAR, runtime INT, FOREIGN KEY (PID) REFERENCES movies(ID));
	// CREATE TABLE aka_title (ID INT NOT NULL, PID INT NOT NULL, aka_title VARCHAR NOT NULL, FOREIGN KEY (PID) REFERENCES movie(ID));
	// CREATE TABLE director (ID INT NOT NULL, PID INT NOT NULL, director VARCHAR NOT NULL, FOREIGN KEY (PID) REFERENCES movie(ID));
	// CREATE TABLE actor (ID INT NOT NULL, PID INT NOT NULL, actor VARCHAR NOT NULL, FOREIGN KEY (PID) REFERENCES movie(ID));
}

// ExampleTranslateQuery shows the sorted outer-union translation of
// the paper's Section 1.1 query under hybrid inlining (Mapping 1).
func ExampleTranslateQuery() {
	m, err := xmlshred.CompileMapping(xmlshred.DBLPSchema())
	if err != nil {
		log.Fatal(err)
	}
	q, err := xmlshred.ParseQuery(`/dblp/inproceedings[booktitle = "SIGMOD CONFERENCE"]/(title | year | author)`)
	if err != nil {
		log.Fatal(err)
	}
	sql, err := xmlshred.TranslateQuery(m, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(sql.SQL())
	// Output:
	// SELECT inproceedings.ID, inproceedings.title, inproceedings.year, NULL AS author FROM inproceedings WHERE inproceedings.booktitle = 'SIGMOD CONFERENCE'
	// UNION ALL
	// SELECT inproceedings.ID, NULL AS title, NULL AS year, author.author FROM inproceedings, author WHERE author.PID = inproceedings.ID AND inproceedings.booktitle = 'SIGMOD CONFERENCE'
	// ORDER BY ID
}

// ExampleParseDTDString shows DTD input (the paper's footnote 3).
func ExampleParseDTDString() {
	tree, err := xmlshred.ParseDTDString(`
		<!ELEMENT library (book*)>
		<!ELEMENT book (title, isbn?)>
		<!ELEMENT title (#PCDATA)>
		<!ELEMENT isbn (#PCDATA)>
	`, "library")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tree)
	// Output:
	// library{library}(book{book}(title,isbn?)*)
}
