// Benchmarks regenerating every table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index). Each benchmark
// runs the corresponding experiment at a laptop scale and reports the
// paper's series as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the shape of the published results: who wins, by roughly
// what factor, and where the crossovers fall. Absolute times differ
// from the paper's SQL Server testbed by design.
package xmlshred_test

import (
	"runtime"
	"testing"

	xmlshred "repro"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/physical"
	"repro/internal/stats"
	"repro/internal/workload"
)

// benchScaleMovie/DBLP keep benchmark iterations tractable.
const (
	benchScaleMovie = experiments.Scale(0.2)  // 2,000 movies
	benchScaleDBLP  = experiments.Scale(0.1)  // 2,000 publications
	benchScaleIntro = experiments.Scale(0.25) // 5,000 publications
)

var (
	benchMovie *experiments.Dataset
	benchDBLP  *experiments.Dataset
)

func movieDataset() *experiments.Dataset {
	if benchMovie == nil {
		benchMovie = experiments.LoadMovie(benchScaleMovie)
	}
	return benchMovie
}

func dblpDataset() *experiments.Dataset {
	if benchDBLP == nil {
		benchDBLP = experiments.LoadDBLP(benchScaleDBLP)
	}
	return benchDBLP
}

func benchWorkload(b *testing.B, d *experiments.Dataset, params workload.Params) *workload.Workload {
	b.Helper()
	w, err := xmlshred.GenerateWorkload(d.Tree, d.Col, params)
	if err != nil {
		b.Fatal(err)
	}
	return w
}

// BenchmarkIntroExample reproduces the Section 1.1 motivating example:
// Mapping 1 vs Mapping 2 with and without physical design. Reported
// metrics: m1/m2 time ratio tuned (paper ~20x) and untuned (paper
// ~0.8x).
func BenchmarkIntroExample(b *testing.B) {
	d := experiments.LoadDBLP(benchScaleIntro)
	var tuned, untuned float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunIntroExample(d)
		if err != nil {
			b.Fatal(err)
		}
		tuned, untuned = res.TunedRatio(), res.UntunedRatio()
	}
	b.ReportMetric(tuned, "m1/m2-tuned")
	b.ReportMetric(untuned, "m1/m2-untuned")
}

// BenchmarkTable1 regenerates the dataset characteristics table.
func BenchmarkTable1(b *testing.B) {
	var rows []experiments.Table1Row
	for i := 0; i < b.N; i++ {
		rows = []experiments.Table1Row{
			experiments.RunTable1(dblpDataset()),
			experiments.RunTable1(movieDataset()),
		}
	}
	for _, r := range rows {
		b.ReportMetric(float64(r.Transformations), r.Dataset+"-transforms")
		b.ReportMetric(float64(r.NonSubsumed), r.Dataset+"-nonsubsumed")
	}
}

// comparisonBench runs the Fig. 4/5/6 comparison on one dataset and
// reports normalized execution time (Fig. 4), normalized search time
// (Fig. 5), and transformations searched (Fig. 6) per algorithm.
func comparisonBench(b *testing.B, d *experiments.Dataset, queries int, algos experiments.Algorithms, opts core.Options) {
	w := benchWorkload(b, d, workload.StandardParams(queries, 7)[0])
	var rows []experiments.Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunComparison(d, w, algos, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.NormExec, r.Algorithm+"-normExec")
		b.ReportMetric(r.NormSearch, r.Algorithm+"-normSearch")
		b.ReportMetric(float64(r.Transformations), r.Algorithm+"-transforms")
	}
}

// benchOpts is the shared search configuration of the comparison
// benchmarks.
var benchOpts = core.Options{MaxRounds: 3}

// BenchmarkFig4DBLP / BenchmarkFig4Movie: workload execution time of
// the mappings returned by Greedy, Naive-Greedy, and Two-Step,
// normalized to hybrid inlining.
func BenchmarkFig4DBLP(b *testing.B) {
	comparisonBench(b, dblpDataset(), 10, experiments.Algorithms{Greedy: true, Naive: true, Two: true}, benchOpts)
}

func BenchmarkFig4Movie(b *testing.B) {
	comparisonBench(b, movieDataset(), 10, experiments.Algorithms{Greedy: true, Naive: true, Two: true}, benchOpts)
}

// BenchmarkFig5DBLP / Movie: advisor running time normalized to
// Two-Step (the same runs; the normSearch metrics are Fig. 5's
// series).
func BenchmarkFig5DBLP(b *testing.B) {
	comparisonBench(b, dblpDataset(), 10, experiments.Algorithms{Greedy: true, Naive: true, Two: true}, benchOpts)
}

func BenchmarkFig5Movie(b *testing.B) {
	comparisonBench(b, movieDataset(), 10, experiments.Algorithms{Greedy: true, Naive: true, Two: true}, benchOpts)
}

// BenchmarkFig5DBLPParallel is BenchmarkFig5DBLP's Greedy search with
// the evaluation service running at full parallelism. The recommended
// design and every search counter are identical to the sequential run;
// only the wall-clock search time (and the searchMs metric here) drops.
// The cacheHits metric shows the memoized reuse that, together with the
// worker pool, produces the speed-up.
func BenchmarkFig5DBLPParallel(b *testing.B) {
	d := dblpDataset()
	w := benchWorkload(b, d, workload.StandardParams(10, 7)[0])
	opts := benchOpts
	opts.Parallelism = runtime.GOMAXPROCS(0)
	var res *xmlshred.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = xmlshred.NewAdvisor(d.Tree, d.Col, w, opts).Greedy()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Metrics.Duration.Microseconds())/1000, "searchMs")
	b.ReportMetric(float64(res.Metrics.EvalCacheHits), "cacheHits")
	b.ReportMetric(float64(res.Metrics.EvalCacheMisses), "cacheMisses")
}

// BenchmarkFig6DBLP / Movie: transformations searched (the -transforms
// metrics are Fig. 6's series).
func BenchmarkFig6DBLP(b *testing.B) {
	comparisonBench(b, dblpDataset(), 20, experiments.Algorithms{Greedy: true, Two: true}, benchOpts)
}

func BenchmarkFig6Movie(b *testing.B) {
	comparisonBench(b, movieDataset(), 20, experiments.Algorithms{Greedy: true, Two: true}, benchOpts)
}

// BenchmarkFig7 reports the candidate-selection speed-ups on DBLP.
func BenchmarkFig7(b *testing.B) {
	d := dblpDataset()
	w := benchWorkload(b, d, workload.StandardParams(10, 11)[0])
	var rows []experiments.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunFig7(d, w, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Speedup, r.Variant+"-speedup")
	}
}

// BenchmarkFig8 reports merging-strategy quality and running time.
func BenchmarkFig8(b *testing.B) {
	d := movieDataset()
	w := benchWorkload(b, d, workload.StandardParams(10, 13)[0])
	var rows []experiments.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunFig8(d, w, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.NormEst, r.Variant+"-normEst")
		b.ReportMetric(r.Speedup, r.Variant+"-relTime")
	}
}

// BenchmarkFig9 reports cost-derivation quality and speed-up.
func BenchmarkFig9(b *testing.B) {
	d := dblpDataset()
	w := benchWorkload(b, d, workload.StandardParams(10, 17)[0])
	var rows []experiments.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunFig9(d, w, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.NormEst, r.Variant+"-normEst")
		if r.Speedup > 0 {
			b.ReportMetric(r.Speedup, r.Variant+"-speedup")
		}
	}
}

// BenchmarkUpdateWorkload is the ablation bench for the update-stream
// extension: reports the number of structures recommended for a
// read-only vs an update-heavy workload (the latter must be leaner).
func BenchmarkUpdateWorkload(b *testing.B) {
	d := dblpDataset()
	queries := []string{
		`//inproceedings[booktitle = "SIGMOD CONFERENCE"]/(title | year | author)`,
		`//inproceedings[year = 2000]/(title | pages | ee)`,
	}
	var ro, up int
	for i := 0; i < b.N; i++ {
		w := xmlshred.MustWorkload("ro", queries...)
		adv := xmlshred.NewAdvisor(d.Tree, d.Col, w, xmlshred.Options{})
		res, err := adv.HybridBaseline()
		if err != nil {
			b.Fatal(err)
		}
		ro = len(res.Config.Indexes) + len(res.Config.Views)

		uw := xmlshred.MustWorkload("up", queries...)
		uw.Updates = []workload.Update{{Element: "inproceedings", Rate: 100000}}
		uadv := xmlshred.NewAdvisor(d.Tree, d.Col, uw, xmlshred.Options{})
		ures, err := uadv.HybridBaseline()
		if err != nil {
			b.Fatal(err)
		}
		up = len(ures.Config.Indexes) + len(ures.Config.Views)
	}
	b.ReportMetric(float64(ro), "structures-readonly")
	b.ReportMetric(float64(up), "structures-updateheavy")
}

// executorBenchSetup builds the Fig. 5 DBLP workload's plans under the
// hybrid mapping: the same queries the comparison benchmarks execute,
// planned once, so the executor benchmarks below time pure execution.
func executorBenchSetup(b *testing.B) (*engine.Built, []*optimizer.Plan) {
	b.Helper()
	d := dblpDataset()
	w := benchWorkload(b, d, workload.StandardParams(10, 7)[0])
	m, err := xmlshred.CompileMapping(d.Tree)
	if err != nil {
		b.Fatal(err)
	}
	db, err := xmlshred.ShredDocuments(m, d.Docs...)
	if err != nil {
		b.Fatal(err)
	}
	cfg := &physical.Config{}
	built, err := engine.Build(db, cfg)
	if err != nil {
		b.Fatal(err)
	}
	opt := optimizer.New(stats.FromDatabase(db))
	var plans []*optimizer.Plan
	for _, wq := range w.Queries {
		sql, err := xmlshred.TranslateQuery(m, wq.XPath)
		if err != nil {
			b.Fatal(err)
		}
		plan, err := opt.PlanQuery(sql, cfg)
		if err != nil {
			b.Fatal(err)
		}
		plans = append(plans, plan)
	}
	return built, plans
}

// BenchmarkExecuteReference times the row-at-a-time reference executor
// on the Fig. 5 DBLP workload — the old execution path, kept as the
// differential-testing oracle. Compare ns/op and allocs/op against
// BenchmarkExecuteBatch/BenchmarkExecutePrepared (see BENCH_PR3.json).
func BenchmarkExecuteReference(b *testing.B) {
	built, plans := executorBenchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, plan := range plans {
			if _, err := engine.ExecuteReference(built, plan); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkExecuteBatch times the pipelined batch executor through the
// public Execute entry point (prepared-plan lookup included).
func BenchmarkExecuteBatch(b *testing.B) {
	built, plans := executorBenchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, plan := range plans {
			if _, err := engine.Execute(built, plan); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkExecutePrepared times repeated executions of pre-compiled
// PreparedPlans — the steady state of MeasureExecution's repetition
// loop, where even the fingerprint lookup is amortized away.
func BenchmarkExecutePrepared(b *testing.B) {
	built, plans := executorBenchSetup(b)
	pps := make([]*engine.PreparedPlan, len(plans))
	for i, plan := range plans {
		pp, err := built.Prepared(plan)
		if err != nil {
			b.Fatal(err)
		}
		pps[i] = pp
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, pp := range pps {
			if _, err := pp.Execute(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkExecutePreparedTraced is BenchmarkExecutePrepared with the
// observability layer attached: every execution records an
// executor.execute span with per-branch children and live registry
// counters. The delta against BenchmarkExecutePrepared is the cost of
// *enabled* tracing; BenchmarkExecutePrepared itself (nil tracer — the
// default) must stay within the BENCH_PR3.json baseline, which
// scripts/benchguard enforces in CI.
func BenchmarkExecutePreparedTraced(b *testing.B) {
	built, plans := executorBenchSetup(b)
	built.AttachObs(obs.New(), obs.NewRegistry())
	pps := make([]*engine.PreparedPlan, len(plans))
	for i, plan := range plans {
		pp, err := built.Prepared(plan)
		if err != nil {
			b.Fatal(err)
		}
		pps[i] = pp
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, pp := range pps {
			if _, err := pp.Execute(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchExecutePreparedWorkers is BenchmarkExecutePrepared with the
// morsel worker pool on: same pre-compiled plans, same Fig. 5 DBLP
// workload, intra-query parallelism at the given worker count. Results
// are bit-identical to workers=1; only wall-clock changes. Speedup
// over BenchmarkExecutePrepared requires actual hardware parallelism —
// on a single-CPU host the interesting bound is the overhead, which
// scripts/benchguard caps.
func benchExecutePreparedWorkers(b *testing.B, workers int) {
	built, plans := executorBenchSetup(b)
	pps := make([]*engine.PreparedPlan, len(plans))
	for i, plan := range plans {
		pp, err := built.Prepared(plan)
		if err != nil {
			b.Fatal(err)
		}
		pp.Workers = workers
		pps[i] = pp
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, pp := range pps {
			if _, err := pp.Execute(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkExecutePreparedWorkers2(b *testing.B) { benchExecutePreparedWorkers(b, 2) }
func BenchmarkExecutePreparedWorkers4(b *testing.B) { benchExecutePreparedWorkers(b, 4) }

// BenchmarkShred measures raw shredding throughput (rows/op metric).
func BenchmarkShred(b *testing.B) {
	d := movieDataset()
	m, err := xmlshred.CompileMapping(d.Tree)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var rows int
	for i := 0; i < b.N; i++ {
		db, err := xmlshred.ShredDocuments(m, d.Docs...)
		if err != nil {
			b.Fatal(err)
		}
		rows = 0
		for _, t := range db.Tables() {
			rows += t.RowCount()
		}
	}
	b.ReportMetric(float64(rows), "rows")
}

// BenchmarkExecuteQuery measures end-to-end single-query latency under
// a tuned configuration.
func BenchmarkExecuteQuery(b *testing.B) {
	d := movieDataset()
	m, err := xmlshred.CompileMapping(d.Tree)
	if err != nil {
		b.Fatal(err)
	}
	db, err := xmlshred.ShredDocuments(m, d.Docs...)
	if err != nil {
		b.Fatal(err)
	}
	w := xmlshred.MustWorkload("bench", `//movie[year >= 2000]/(title | box_office)`)
	cfg, err := xmlshred.TunePhysicalDesign(m, d.Col, w, 0)
	if err != nil {
		b.Fatal(err)
	}
	q, err := xmlshred.TranslateQuery(m, w.Queries[0].XPath)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, _, err := xmlshred.ExecuteQuery(db, cfg, q)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}
